type model = {
  name : string;
  dispatch_overhead_ns : int;
  parse_ns : int;
  service_ns : int;
  alloc_per_request : int;
  gc_threshold : int;
  gc_pause_ns : int;
}

let mc =
  {
    name = "mc";
    dispatch_overhead_ns = 1_200;
    parse_ns = 2_000;
    service_ns = 25_000;
    alloc_per_request = 1_024;
    gc_threshold = 8 lsl 20;
    gc_pause_ns = 300_000;
  }

let lwt =
  {
    name = "lwt";
    dispatch_overhead_ns = 2_500;
    parse_ns = 2_000;
    service_ns = 25_000;
    alloc_per_request = 4_096;
    gc_threshold = 8 lsl 20;
    gc_pause_ns = 450_000;
  }

let go =
  {
    name = "go";
    dispatch_overhead_ns = 1_800;
    parse_ns = 2_000;
    service_ns = 25_000;
    alloc_per_request = 2_560;
    gc_threshold = 8 lsl 20;
    gc_pause_ns = 350_000;
  }

let all = [ mc; lwt; go ]

let static_page =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<html><head><title>retrofit bench</title></head><body>";
  for i = 1 to 24 do
    Buffer.add_string buf (Printf.sprintf "<p>line %02d of the static benchmark page</p>" i)
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

exception Backend_failure

let crash_header = "x-fault-inject"

let internal_error = Http.response ~status:500 "internal server error"

let app_handler (req : Http.request) =
  if Http.header req crash_header = Some "crash" then raise Backend_failure;
  match (req.meth, req.target) with
  | Http.GET, "/" -> Http.ok static_page
  | Http.GET, _ -> Http.not_found
  | _ -> Http.response ~status:405 "method not allowed"
