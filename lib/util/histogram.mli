(** HDR-style latency histogram.

    The paper's web-server experiment (Fig 6b) records latency percentiles
    with wrk2, which uses an HdrHistogram: fixed-precision log-linear
    buckets that record values in constant time and answer percentile
    queries with bounded relative error.  This module is our equivalent.

    Values are non-negative integers (we use nanoseconds of simulated
    time).  With [significant_figures = 3] any recorded value is recovered
    to within 0.1 %. *)

type t

val create : ?significant_figures:int -> max_value:int -> unit -> t
(** [create ~max_value ()] can record values in [\[0, max_value\]].
    [significant_figures] (1–5, default 3) bounds the relative error.
    @raise Invalid_argument on out-of-range parameters. *)

val record : t -> int -> unit
(** Record one value.  Values above [max_value] are clamped to it and
    counted in [saturated].  @raise Invalid_argument on negatives. *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [v] with multiplicity [n]. *)

val count : t -> int
(** Total number of recorded values. *)

val saturated : t -> int
(** How many recorded values exceeded [max_value]. *)

val min_value : t -> int
(** Smallest recorded value (bucket lower bound); 0 if empty. *)

val max_recorded : t -> int
(** Largest recorded value (bucket representative); 0 if empty. *)

val value_at_percentile : t -> float -> int
(** [value_at_percentile t p] for [p] in (0,100]: the smallest recorded
    bucket value such that at least [p] percent of recordings are <= it.
    @raise Invalid_argument if empty or [p] out of range. *)

val mean : t -> float
(** Mean of bucket representatives, weighted by count; 0 if empty. *)

val merge_into : dst:t -> t -> unit
(** Add all recordings of the source into [dst].  Both histograms must
    have identical parameters.  @raise Invalid_argument otherwise. *)

val add_hist : dst:t -> t -> unit
(** Alias of {!merge_into}. *)

val copy : t -> t
(** An independent histogram with the same parameters and recordings. *)

val merge : t -> t -> t
(** Non-destructive merge: a fresh histogram holding the union of both
    recording sets — used to aggregate per-fiber latency histograms
    into registry snapshots.  Preserves total count, per-bucket sums,
    saturation counts and min/max.  Both arguments must have identical
    parameters.  @raise Invalid_argument otherwise. *)

val bucket_counts : t -> int array
(** A copy of the raw per-bucket counts, for property tests that check
    merge preserves bucket sums exactly. *)

(** {2 Bucketing internals}

    Exposed so property tests can check the log-linear indexing
    directly: [value_from_index t (counts_index t v)] must be a bucket
    lower bound within the advertised relative error of [v], and
    [counts_index] must be monotone in [v]. *)

val counts_index : t -> int -> int

val value_from_index : t -> int -> int
