(** Summary statistics used by the benchmark harness.

    The evaluation in the paper reports geometric means of normalized
    runtimes (Fig 4, Fig 5), percentage differences (Table 1), slowdown
    factors (Table 2) and latency percentiles (Fig 6b); these helpers
    compute each of those. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val geomean : float array -> float
(** Geometric mean; all inputs must be positive.
    @raise Invalid_argument on an empty array or a non-positive entry. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics (sorted with [Float.compare], so ordering is total).
    @raise Invalid_argument on an empty array, a NaN entry, or [p]
    outside the range. *)

val min : float array -> float
(** @raise Invalid_argument on an empty array or a NaN entry. *)

val max : float array -> float
(** @raise Invalid_argument on an empty array or a NaN entry. *)

val normalize : baseline:float array -> float array -> float array
(** Pointwise ratio [x_i / baseline_i], as used for the normalized-time
    bars of Fig 4.  @raise Invalid_argument on length mismatch or a zero
    baseline entry. *)

val percent_diff : baseline:float -> float -> float
(** [(x - baseline) / baseline * 100], the "+17" style entries of
    Table 1. *)

val slowdown : baseline:float -> float -> float
(** [x / baseline], the "12.25×" style entries of Table 2. *)
