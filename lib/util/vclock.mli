(** Process-wide virtual clock (integer nanoseconds, deterministic).

    The observability layer stamps events from this clock whenever a
    site does not pass an explicit virtual timestamp of its own.  It
    never consults the host clock. *)

val now : unit -> int

val set : int -> unit
(** @raise Invalid_argument on negative time. *)

val advance : int -> unit
(** Advance by [n] ns; non-positive [n] is a no-op. *)

val reset : unit -> unit

val scoped : ?at:int -> (unit -> 'a) -> 'a
(** Run the thunk with the clock rewound to [at] (default 0), restoring
    the previous reading afterwards. *)
