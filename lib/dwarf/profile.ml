module Machine = Retrofit_fiber.Machine
module Counter = Retrofit_util.Counter
module Metrics = Retrofit_metrics.Metrics

type t = {
  table : Table.t;
  interval : int;
  mutable next_at : int;
  stacks : (string, int) Hashtbl.t;
  mutable samples : int;
  mutable failures : int;
  mutable boundary_samples : int;
  mutable wait_samples : int;
}

let create ?(interval = 1_000) table =
  if interval <= 0 then invalid_arg "Profile.create: interval must be positive";
  {
    table;
    interval;
    next_at = interval;
    stacks = Hashtbl.create 64;
    samples = 0;
    failures = 0;
    boundary_samples = 0;
    wait_samples = 0;
  }

let interval t = t.interval

let entry_name = function
  | Unwind.Frame { fn; _ } -> fn
  | Unwind.C_boundary -> "<C>"
  | Unwind.Fiber_boundary _ -> "<fiber>"
  | Unwind.Main_end -> "<main>"
  | Unwind.Captured_end -> "<captured>"

let crosses_fiber_boundary entries =
  List.exists (function Unwind.Fiber_boundary _ -> true | _ -> false) entries

(* The unwinder reports innermost-first; folded stacks are root-first,
   so a single rev_map both renames and reorders. *)
let fold_entries entries = String.concat ";" (List.rev_map entry_name entries)

let sample t m =
  t.samples <- t.samples + 1;
  match Unwind.backtrace t.table m with
  | entries ->
      if crosses_fiber_boundary entries then
        t.boundary_samples <- t.boundary_samples + 1;
      let key = fold_entries entries in
      let n = match Hashtbl.find_opt t.stacks key with Some n -> n | None -> 0 in
      Hashtbl.replace t.stacks key (n + 1)
  | exception Unwind.Unwind_error _ -> t.failures <- t.failures + 1

let on_step t m =
  let now = Counter.get (Machine.counters m) "instructions" in
  if now >= t.next_at then begin
    (* Align the next deadline to the interval grid so a burst of
       expensive instructions costs one sample, not several, and the
       sample points are a pure function of the cost stream. *)
    t.next_at <- (((now / t.interval) + 1) * t.interval);
    sample t m
  end

let hook t = fun m -> on_step t m

(* Blocked-time samples: the scheduler's causal layer knows when fibers
   sat parked on I/O or runnable in the queue; those instants have no
   machine stack to unwind, so they fold under a synthetic
   [<sched>;<wait:KIND>] frame — speedscope then shows blocked time
   side by side with on-CPU frames instead of silently omitting it. *)
let record_wait ?(n = 1) t ~kind =
  if n > 0 then begin
    t.samples <- t.samples + n;
    t.wait_samples <- t.wait_samples + n;
    let key = "<sched>;<wait:" ^ kind ^ ">" in
    let prev = match Hashtbl.find_opt t.stacks key with Some v -> v | None -> 0 in
    Hashtbl.replace t.stacks key (prev + n)
  end

let wait_samples t = t.wait_samples

let samples t = t.samples

let failures t = t.failures

let boundary_samples t = t.boundary_samples

let stacks t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stacks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let folded t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, n) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack n))
    (stacks t);
  Buffer.contents buf

let publish ?r t =
  if Metrics.on () then begin
    Metrics.inc ?r ~by:t.samples "profile_samples_total";
    Metrics.inc ?r ~by:t.failures "profile_unwind_failures_total";
    Metrics.inc ?r ~by:t.boundary_samples "profile_fiber_boundary_samples_total";
    Metrics.inc ?r ~by:t.wait_samples "profile_wait_samples_total";
    Metrics.set_gauge ?r "profile_distinct_stacks" (Hashtbl.length t.stacks)
  end
