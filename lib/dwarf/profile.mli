(** Sampling profiler over the DWARF unwinder.

    Every [interval] virtual-time ticks — the machine's cumulative
    "instructions" cost, not wall time — the profiler takes a backtrace
    of the running machine through {!Unwind.backtrace}, which crosses
    fiber boundaries by following parent pointers (§5.4), and
    aggregates the result as folded flamegraph stacks (root-first,
    semicolon-joined, one [stack count] line each — the format
    flamegraph.pl and speedscope consume).  Fiber crossings appear as
    ["<fiber>"] marker frames, callback boundaries as ["<C>"].

    Sampling is driven entirely by virtual time, so a profile is a pure
    function of the workload: same program, same interval — same folded
    output, byte for byte.  Unwind failures are counted, never fatal,
    and published as the [profile_unwind_failures_total] metric. *)

type t

val create : ?interval:int -> Table.t -> t
(** Sample every [interval] (default 1000) instruction-cost ticks.
    @raise Invalid_argument unless [interval > 0]. *)

val interval : t -> int

val hook : t -> Retrofit_fiber.Machine.t -> unit
(** The per-step callback: pass as [~on_step] to
    {!Retrofit_fiber.Machine.run}. *)

val sample : t -> Retrofit_fiber.Machine.t -> unit
(** Take one sample immediately, off the interval grid. *)

val samples : t -> int
(** Samples attempted (successful or not). *)

val failures : t -> int
(** Samples on which the unwinder raised {!Unwind.Unwind_error}. *)

val boundary_samples : t -> int
(** Samples whose stack crossed at least one fiber boundary. *)

val record_wait : ?n:int -> t -> kind:string -> unit
(** Add [n] (default 1) blocked-time samples under the synthetic
    [<sched>;<wait:KIND>] folded frame (kinds in use: [io], [runq]) —
    speedscope then shows parked/runnable time alongside on-CPU
    frames.  Counted in {!samples} and {!wait_samples}. *)

val wait_samples : t -> int
(** Samples recorded via {!record_wait}. *)

val crosses_fiber_boundary : Unwind.entry list -> bool

val stacks : t -> (string * int) list
(** Folded stacks with counts, sorted by stack. *)

val folded : t -> string
(** The folded flamegraph file contents. *)

val publish : ?r:Retrofit_metrics.Metrics.t -> t -> unit
(** Push sample/failure/boundary totals into the metrics registry
    (no-op while the registry is disabled). *)
