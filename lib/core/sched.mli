(** The cooperative lightweight-thread scheduler of §3.1.

    Threads are continuations queued in a run queue; [Fork] spawns a
    thunk as a new thread, [Yield] reschedules the current one, and
    [Suspend] parks the current thread, handing its resumer to arbitrary
    synchronisation code (this is how {!Mvar} blocks threads).

    The scheduling policy is a parameter: the paper observes that
    changing the run queue from FIFO to LIFO changes the scheduling
    algorithm without touching any other code.  {!Chaos} extends the
    same idea adversarially: a seeded chaos policy perturbs dequeue
    order, stashes resumes, injects spurious wakeups, and kills opted-in
    fibers at suspension points — all deterministically in the seed.

    Cancellation follows §2.3: {!fork_cancellable} returns a [cancel]
    handle that [discontinue]s the fiber with {!Cancelled} at its
    current (or next) suspension point, exactly once.  The discontinued
    fiber unwinds through its own cleanup handlers — the §3.2 [copy]
    pattern of closing resources on any exception keeps working — and
    its parked resumer becomes a no-op. *)

type policy = Fifo | Lifo

type 'a resumer = 'a -> unit
(** Resuming a parked thread: enqueues it, does not run it inline. *)

exception Cancelled
(** Raised at the suspension point of a fiber that has been cancelled
    via the handle returned by {!fork_cancellable}. *)

exception Killed
(** Raised at the suspension point of a fiber destroyed by the chaos
    engine (or by a supervisor's force-kill).  Unlike {!Cancelled} this
    is an {e abnormal} exit: supervisors restart on it, and the server
    crash barriers let it pass through rather than counting a 500. *)

exception One_shot
(** Raised by a resumer invoked a second time (continuations are
    one-shot, §5.2).  A resumer whose suspension was {e cancelled} is a
    no-op instead: the cancel consumed the continuation, so a late
    resume has nothing left to do and must not crash the resuming
    code. *)

(** The cancellation control cell shared between a fiber's runner and
    its cancel handle.  Exposed so that other runners (notably {!Aio})
    can implement the same protocol for their own blocking points. *)
module Ctl : sig
  type t

  val create : unit -> t

  val finish : t -> unit
  (** Mark the fiber completed; cancel becomes a no-op. *)

  val cancelled : t -> bool
  (** Has cancel been requested? *)

  val set_parked : t -> (exn -> unit) -> unit
  (** Install the discontinue hook for the fiber's current suspension. *)

  val set_killable_cell : t -> bool -> unit
  (** Flip the chaos opt-in flag on the cell directly; runners use this
      to serve the {!Set_killable} effect. *)

  val clear_parked : t -> unit

  val set_cleanup : t -> (unit -> unit) -> unit
  (** Install a hook fired exactly once if the fiber is cancelled (or
      chaos-killed) before its current suspension resumes: wait queues
      use it to purge the dead waiter eagerly.  Cleared automatically
      when the suspension resumes normally. *)

  val clear_cleanup : t -> unit

  val run_cleanup : t -> unit
  (** Fire and clear the cleanup hook, if any.  Runners call this when a
      fiber dies abnormally ({!Killed}) without going through
      {!cancel}. *)

  val cancel : t -> unit
  (** Request cancellation: fires the cleanup hook, then the parked
      hook with {!Cancelled} if the fiber is suspended, otherwise marks
      it for discontinuation at its next suspension point.  One-shot; a
      no-op after the fiber finishes or after a previous cancel. *)

  val arm :
    ?ctl:t ->
    enqueue:((unit -> unit) -> unit) ->
    continue:('a -> unit) ->
    discontinue:(exn -> unit) ->
    'a resumer
  (** Wire one suspension point: returns the one-shot resumer
      (first use enqueues [continue]; second use raises {!One_shot};
      any use after cancellation is a no-op) and, when [ctl] is given,
      installs the cancel hook that enqueues [discontinue]. *)
end

(** Seeded adversarial scheduling.  All draws come from one xoshiro
    stream at sites whose order is fixed by the deterministic scheduler,
    so a chaos run is a pure function of (workload seed, chaos seed):
    double runs are byte-identical.  With [chaos] absent every code path
    below is untouched — the frozen cost counters stay bit-identical. *)
module Chaos : sig
  type t = {
    seed : int;
    kill_rate : float;  (** P(kill a killable fiber at a suspension point) *)
    delay_rate : float;  (** P(stash a resume for a few scheduler ops) *)
    max_delay : int;  (** max stash duration, in dequeue steps *)
    reorder_rate : float;  (** P(dequeue an adversarial position instead) *)
    spurious_rate : float;  (** P(inject a spurious wakeup alongside a push) *)
  }

  val default : seed:int -> t

  type stats = { kills : int; delays : int; reorders : int; spurious : int }

  type state
  (** Mutable per-run chaos state: the rng stream, the stash of delayed
      resumes, and the injection counters. *)

  val make : t -> state
  (** Also registers the state as the latest for {!chaos_stats}. *)

  val snapshot : state -> stats

  val wrap :
    state ->
    push:((unit -> unit) -> unit) ->
    pop:(unit -> (unit -> unit) option) ->
    depth:(unit -> int) ->
    pop_nth:(int -> unit -> unit) ->
    run_next:(unit -> unit) ref ->
    ((unit -> unit) -> unit) * (unit -> (unit -> unit) option)
  (** [wrap st ~push ~pop ~depth ~pop_nth ~run_next] turns a runner's
      raw queue operations into the chaos-perturbed (push, pop) pair:
      pushes may be stashed (delayed resume) or doubled with a spurious
      wakeup, pops may dequeue an adversarial position.  [run_next] must
      be tied to the runner's drain loop before the first pop.  Used by
      {!run} and by {!Aio}'s runners. *)

  val kill_draw : state option -> Ctl.t option -> bool
  (** Draw a kill decision for a fiber about to park: [true] only for a
      live, killable, not-yet-cancelled cell under an active chaos
      state.  Counts and emits the injection when it fires. *)
end

val chaos_stats : unit -> Chaos.stats option
(** Injection counts of the most recent (or current) chaos-enabled
    {!run} / {!Aio} run; [None] before any chaos run. *)

(** The scheduler effects are public so that other runners (notably
    {!Aio}) can handle them alongside their own — an effect declared
    once composes with any handler that chooses to serve it. *)
type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Fork_cancellable : (unit -> unit) -> (unit -> unit) Effect.t
  | Set_killable : bool -> unit Effect.t
  | Current_ctl : Ctl.t option Effect.t

val fork : (unit -> unit) -> unit
(** Must run inside {!run}. *)

val fork_cancellable : (unit -> unit) -> unit -> unit
(** [fork_cancellable f] spawns [f] like {!fork} and returns a
    [cancel] handle.  Calling it discontinues the fiber with
    {!Cancelled} at its current suspension (or its next one, if it is
    not currently parked), exactly once; calling it after the fiber has
    completed, or a second time, is a no-op. *)

val yield : unit -> unit

val suspend : ('a resumer -> unit) -> 'a
(** [suspend f] parks the current thread and calls [f resumer]; the
    thread continues (with the value passed to the resumer) after some
    other code invokes it.  Invoking a resumer twice raises
    {!One_shot}; invoking it after the suspension was cancelled is a
    no-op. *)

val set_killable : bool -> unit
(** Opt the current fiber in (or out) of chaos kills.  Only fibers that
    opted in — supervised workers and nursery children, which have a
    restart / unwind story — are ever killed; bare fibers are not.
    A no-op outside {!run} / {!Aio}. *)

val current_ctl : unit -> Ctl.t option
(** The control cell of the calling fiber, if it was spawned with
    {!fork_cancellable}.  Wait queues capture it {e before} parking to
    register an eager-purge cleanup.  [None] for plain fibers or
    outside a runner. *)

val run :
  ?policy:policy ->
  ?chaos:Chaos.t ->
  ?clock:(unit -> int) ->
  ?idle:(unit -> bool) ->
  (unit -> unit) ->
  unit
(** Runs the main thread and every forked descendant to completion.
    An exception escaping any thread aborts the whole scheduler run,
    except {!Cancelled} leaving a cancelled fiber and {!Killed} leaving
    a chaos-killed one, which are normal exits.

    [chaos] switches the run queue to the seeded adversarial policy.
    [clock] is the virtual clock used (only when tracing or metrics are
    enabled) to stamp runnable-enqueue instants: every enqueue records
    how long the thunk sat runnable before running, as a [Wakeup] event
    tagged with its cause (yield / fork / wakeup / cancel / kill) and a
    [scheduler_runnable_wait_ns] histogram sample.  Defaults to
    {!Retrofit_util.Vclock.now}; pass the driving event loop's clock
    when one exists.  [idle] is called when the run queue is empty;
    returning [true] retries (use it to advance a virtual-time event
    loop that will resume parked fibers), [false] ends the run. *)

val stats_switches : unit -> int
(** Context switches performed by the most recent (or current) [run];
    used by the scheduling experiments. *)
