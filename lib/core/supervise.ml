(* Erlang-style supervision trees over the §3.1 scheduler.

   Supervisors are ordinary fibers: each one owns a mailbox, forks its
   children with [Sched.fork_cancellable], and every child runs inside
   an effect handler ([Effect.Deep.match_with]) that (a) serves the
   [Self_path]/[Beat] introspection effects and (b) funnels every way a
   fiber can end — normal return, an escaped exception, a [Cancelled]
   or chaos [Killed] unwind — into a single [Child_exited] message to
   the parent's mailbox.  Restart strategies, intensity windows and
   escalation are then plain message-loop logic, exactly the paper's
   pitch that retrofitted handlers make concurrency patterns library
   code.

   Time is virtual: the tree is parameterised by a [clock] (the
   supervised httpsim passes [Evloop.now]), so restart-intensity
   windows and heartbeat staleness are deterministic in the workload
   seed. *)

module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics

exception Escalation of string

type strategy = One_for_one | One_for_all | Rest_for_one

type restart = Permanent | Transient | Temporary

type exit_reason = Exit_normal | Exit_crashed of exn | Exit_killed

let reason_label = function
  | Exit_normal -> "normal"
  | Exit_crashed e -> "crash:" ^ Printexc.to_string e
  | Exit_killed -> "killed"

type outcome = Completed | Gave_up of string

type event =
  | Started of string
  | Exited of string * exit_reason
  | Restarted of string
  | Escalated of string
  | Stopped of string

type spec =
  | Worker of {
      w_name : string;
      w_restart : restart;
      w_killable : bool;
      w_body : unit -> unit;
    }
  | Sup of {
      s_name : string;
      s_strategy : strategy;
      s_max_restarts : int;
      s_window : int;
      s_children : spec list;
    }

let worker ?(restart = Transient) ?(killable = true) name body =
  Worker { w_name = name; w_restart = restart; w_killable = killable; w_body = body }

let supervisor ?(strategy = One_for_one) ?(max_restarts = 3) ?(window = 0) name
    children =
  if children = [] then invalid_arg "Supervise.supervisor: no children";
  Sup
    {
      s_name = name;
      s_strategy = strategy;
      s_max_restarts = max_restarts;
      s_window = window;
      s_children = children;
    }

let spec_name = function Worker w -> w.w_name | Sup s -> s.s_name

let spec_restart = function
  | Worker w -> w.w_restart
  | Sup _ ->
      (* a supervisor child restarts like a Transient worker: crashes
         and escalations bring the subtree back, a normal exit (all its
         children completed, or it was stopped) does not *)
      Transient

(* A single-reader mailbox.  [send] never blocks; [recv] parks the
   reader.  A reader cancelled while parked is purged eagerly (same
   contract as Mvar), so a later [send] queues the message instead of
   feeding it to a dead resumer and losing it. *)
module Mailbox = struct
  type 'a t = { q : 'a Queue.t; mutable waiter : 'a Sched.resumer option }

  let create () = { q = Queue.create (); waiter = None }

  let send t m =
    match t.waiter with
    | Some r ->
        t.waiter <- None;
        r m
    | None -> Queue.push m t.q

  let recv t =
    match Queue.pop t.q with
    | m -> m
    | exception Queue.Empty ->
        let ctl = Sched.current_ctl () in
        Sched.suspend (fun r ->
            t.waiter <- Some r;
            match ctl with
            | Some c -> Sched.Ctl.set_cleanup c (fun () -> t.waiter <- None)
            | None -> ())
end

(* Introspection effects served by each child's wrapper handler. *)
type _ Effect.t += Self_path : string Effect.t | Beat : unit Effect.t

let self_path () =
  try Effect.perform Self_path with Effect.Unhandled _ -> "?"

let heartbeat () = try Effect.perform Beat with Effect.Unhandled _ -> ()

type child = {
  c_spec : spec;
  c_path : string;
  c_index : int;
  mutable c_cancel : (unit -> unit) option;  (* None = not running *)
  mutable c_gen : int;  (* incarnation; stale exit messages are dropped *)
  mutable c_expect_kill : bool;  (* supervisor-initiated kill in flight *)
  mutable c_done : bool;  (* terminal: will never be restarted *)
  mutable c_beat : int;  (* last heartbeat, in clock units *)
  mutable c_stop : (unit -> unit) option;  (* graceful stop (Sup children) *)
}

type msg = Child_exited of child * int * exit_reason | Stop_req

type tree = {
  clock : unit -> int;
  on_event : event -> unit;
  registry : (string, child) Hashtbl.t;  (* leaf name -> live child *)
  mutable restarts : int;
  mutable escalations : int;
  mutable starting : int;
      (* start_child calls whose cancel handle is not yet recorded;
         [start] parks until this drains so the whole tree — including
         nested sub-supervisors — is running before it returns *)
}

let emit_ev tree ev =
  (match ev with
  | Exited (path, how) ->
      if Trace.on () then
        Trace.emit ~ts:(tree.clock ())
          (Tev.Sup_child_exit { path; how = reason_label how });
      if Metrics.on () then Metrics.inc "sup_child_exits_total"
  | Restarted path ->
      if Trace.on () then
        Trace.emit ~ts:(tree.clock ()) (Tev.Sup_restart { path });
      if Metrics.on () then Metrics.inc "sup_restarts_total"
  | Escalated path ->
      if Trace.on () then
        Trace.emit ~ts:(tree.clock ()) (Tev.Sup_escalate { path });
      if Metrics.on () then Metrics.inc "sup_escalations_total"
  | Started _ | Stopped _ -> ());
  tree.on_event ev

(* Run a child body under the wrapper handler: serve the introspection
   effects and normalise every exit into an [exit_reason]. *)
let run_wrapped tree rt body =
  Effect.Deep.match_with body ()
    {
      Effect.Deep.retc = (fun () -> Exit_normal);
      exnc =
        (fun e ->
          match e with
          | Sched.Cancelled | Sched.Killed -> Exit_killed
          | e -> Exit_crashed e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Self_path ->
              Some
                (fun (k : (c, exit_reason) Effect.Deep.continuation) ->
                  Effect.Deep.continue k rt.c_path)
          | Beat ->
              Some
                (fun (k : (c, exit_reason) Effect.Deep.continuation) ->
                  rt.c_beat <- tree.clock ();
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let rec start_child tree mb rt =
  tree.starting <- tree.starting + 1;
  rt.c_gen <- rt.c_gen + 1;
  let gen = rt.c_gen in
  rt.c_expect_kill <- false;
  rt.c_beat <- tree.clock ();
  let body, killable, stop =
    match rt.c_spec with
    | Worker w -> (w.w_body, w.w_killable, None)
    | Sup s ->
        let sub_mb = Mailbox.create () in
        let strategy = s.s_strategy
        and max_restarts = s.s_max_restarts
        and window = s.s_window
        and children = s.s_children in
        ( (fun () ->
            run_sup tree sub_mb rt.c_path ~strategy ~max_restarts ~window
              ~children),
          false,
          Some (fun () -> Mailbox.send sub_mb Stop_req) )
  in
  rt.c_stop <- stop;
  Hashtbl.replace tree.registry (spec_name rt.c_spec) rt;
  emit_ev tree (Started rt.c_path);
  let cancel =
    Sched.fork_cancellable (fun () ->
        if killable then Sched.set_killable true;
        let reason = run_wrapped tree rt body in
        Mailbox.send mb (Child_exited (rt, gen, reason)))
  in
  rt.c_cancel <- Some cancel;
  tree.starting <- tree.starting - 1

(* The supervisor loop for one node of the tree.  Runs in its own
   fiber; returns normally when stopped or when every child is
   terminal, raises [Escalation] when the restart budget is blown. *)
and run_sup tree mb path ~strategy ~max_restarts ~window ~children =
  let rts =
    List.mapi
      (fun i spec ->
        {
          c_spec = spec;
          c_path = path ^ "/" ^ spec_name spec;
          c_index = i;
          c_cancel = None;
          c_gen = 0;
          c_expect_kill = false;
          c_done = false;
          c_beat = 0;
          c_stop = None;
        })
      children
  in
  let backlog : msg Queue.t = Queue.create () in
  let recv () =
    match Queue.pop backlog with
    | m -> m
    | exception Queue.Empty -> Mailbox.recv mb
  in
  let note_exit rt reason =
    rt.c_cancel <- None;
    emit_ev tree (Exited (rt.c_path, reason))
  in
  (* Kill the given children and wait for each to unwind; messages for
     other children are kept aside for the main loop. *)
  let kill_and_wait targets =
    List.iter
      (fun rt ->
        match rt.c_cancel with
        | Some cancel ->
            rt.c_expect_kill <- true;
            cancel ()
        | None -> ())
      targets;
    let process = function
      | Child_exited (rt, gen, _) when gen <> rt.c_gen -> ()  (* stale *)
      | Child_exited (rt, _, reason) when List.memq rt targets ->
          note_exit rt reason
      | m -> Queue.push m backlog
    in
    let pre = Queue.create () in
    Queue.transfer backlog pre;
    Queue.iter process pre;
    while List.exists (fun rt -> rt.c_cancel <> None) targets do
      process (Mailbox.recv mb)
    done
  in
  let restart_times = ref [] in
  let over_budget () =
    let now = tree.clock () in
    let kept =
      if window > 0 then
        List.filter (fun t -> now - t < window) !restart_times
      else !restart_times
    in
    restart_times := now :: kept;
    List.length !restart_times > max_restarts
  in
  let escalate () =
    tree.escalations <- tree.escalations + 1;
    emit_ev tree (Escalated path);
    kill_and_wait (List.filter (fun rt -> rt.c_cancel <> None) rts);
    raise (Escalation path)
  in
  (* Graceful, bottom-up teardown of one child: supervisors get a Stop
     message (which recursively stops their children first), workers
     are cancelled and unwind through their own cleanup handlers. *)
  let stop_child rt =
    match rt.c_cancel with
    | None -> ()
    | Some cancel ->
        (match rt.c_stop with
        | Some stop -> stop ()
        | None ->
            rt.c_expect_kill <- true;
            cancel ());
        while rt.c_cancel <> None do
          match Mailbox.recv mb with
          | Child_exited (r, gen, _) when gen <> r.c_gen -> ()
          | Child_exited (r, _, reason) -> note_exit r reason
          | Stop_req -> ()  (* already stopping *)
        done
  in
  List.iter (start_child tree mb) rts;
  let rec loop () =
    match recv () with
    | Stop_req ->
        List.iter stop_child (List.rev rts);
        emit_ev tree (Stopped path)
    | Child_exited (rt, gen, _) when gen <> rt.c_gen -> loop ()  (* stale *)
    | Child_exited (rt, _, reason) ->
        note_exit rt reason;
        let abnormal =
          match reason with
          | Exit_crashed _ -> true
          | Exit_killed -> not rt.c_expect_kill
          | Exit_normal -> false
        in
        let want_restart =
          match spec_restart rt.c_spec with
          | Permanent -> true
          | Transient -> abnormal
          | Temporary -> false
        in
        if want_restart then begin
          if over_budget () then escalate ()
          else begin
            tree.restarts <- tree.restarts + 1;
            let targets =
              match strategy with
              | One_for_one -> [ rt ]
              | One_for_all -> rts
              | Rest_for_one ->
                  List.filter (fun r -> r.c_index >= rt.c_index) rts
            in
            kill_and_wait (List.filter (fun r -> r != rt) targets);
            List.iter
              (fun r ->
                if not r.c_done then begin
                  emit_ev tree (Restarted r.c_path);
                  start_child tree mb r
                end)
              targets
          end
        end
        else rt.c_done <- true;
        if List.for_all (fun r -> r.c_done) rts then
          (* every child terminal: the supervisor's job is over *)
          ()
        else loop ()
  in
  try loop () with
  | Sched.Cancelled as e ->
      (* force-killed from above: fire the children's cancels (we
         cannot park to wait — our own next suspension would raise
         again); they unwind on their own *)
      List.iter
        (fun rt ->
          match rt.c_cancel with
          | Some cancel ->
              rt.c_expect_kill <- true;
              cancel ()
          | None -> ())
        rts;
      raise e

type handle = {
  h_tree : tree;
  h_mb : msg Mailbox.t;
  h_root : string;
  mutable h_outcome : outcome option;
  mutable h_waiters : unit Sched.resumer list;
}

let start ?(clock = fun () -> 0) ?(on_event = fun _ -> ()) spec =
  match spec with
  | Worker _ -> invalid_arg "Supervise.start: top-level spec must be a supervisor"
  | Sup s ->
      let tree =
        {
          clock;
          on_event;
          registry = Hashtbl.create 16;
          restarts = 0;
          escalations = 0;
          starting = 0;
        }
      in
      let mb = Mailbox.create () in
      let h =
        {
          h_tree = tree;
          h_mb = mb;
          h_root = s.s_name;
          h_outcome = None;
          h_waiters = [];
        }
      in
      let (_ : unit -> unit) =
        Sched.fork_cancellable (fun () ->
            let out =
              match
                run_sup tree mb s.s_name ~strategy:s.s_strategy
                  ~max_restarts:s.s_max_restarts ~window:s.s_window
                  ~children:s.s_children
              with
              | () -> Completed
              | exception Escalation p -> Gave_up p
            in
            h.h_outcome <- Some out;
            let ws = h.h_waiters in
            h.h_waiters <- [];
            List.iter (fun r -> r ()) ws)
      in
      (* The root fiber ran to its first suspension, which lies inside
         its first [start_child] — so [starting] is already positive
         here and only drains once every fork's cancel handle is
         recorded.  Yield (not park) until then: nothing wakes us. *)
      while tree.starting > 0 && h.h_outcome = None do
        Sched.yield ()
      done;
      h

let running h = h.h_outcome = None

let rec wait h =
  match h.h_outcome with
  | Some o -> o
  | None ->
      let ctl = Sched.current_ctl () in
      Sched.suspend (fun r ->
          h.h_waiters <- r :: h.h_waiters;
          match ctl with
          | Some c ->
              Sched.Ctl.set_cleanup c (fun () ->
                  h.h_waiters <- List.filter (fun r' -> r' != r) h.h_waiters)
          | None -> ());
      wait h

let shutdown h =
  Mailbox.send h.h_mb Stop_req;
  wait h

let kill h name =
  match Hashtbl.find_opt h.h_tree.registry name with
  | Some rt -> (
      match rt.c_cancel with
      | Some cancel ->
          cancel ();
          true
      | None -> false)
  | None -> false

let last_heartbeat h name =
  match Hashtbl.find_opt h.h_tree.registry name with
  | Some rt -> Some rt.c_beat
  | None -> None

let restarts h = h.h_tree.restarts

let escalations h = h.h_tree.escalations

(* Trio-style structured concurrency on top of [fork_cancellable]:
   children never outlive the scope, the first unhandled child
   exception cancels the siblings and re-raises at the scope, and a
   cancel reaches each fiber exactly once (Ctl.cancel is one-shot). *)
module Nursery = struct
  type kid = { mutable k_cancel : (unit -> unit) option }

  type t = {
    n_name : string;
    mutable n_live : int;
    mutable n_first : exn option;  (* first unhandled child exception *)
    mutable n_kids : kid list;
    mutable n_closing : bool;
    mutable n_joiner : unit Sched.resumer option;
  }

  let live t = t.n_live

  let failed t = t.n_first

  let cancel_scope t =
    List.iter
      (fun kid -> match kid.k_cancel with Some c -> c () | None -> ())
      t.n_kids

  let wake t =
    match t.n_joiner with
    | Some r ->
        t.n_joiner <- None;
        r ()
    | None -> ()

  let fork ?(killable = true) t f =
    if t.n_first <> None || t.n_closing then ()
      (* the scope is failing or closing: a new child would be cancelled
         immediately, so it is never started *)
    else begin
      t.n_live <- t.n_live + 1;
      let kid = { k_cancel = None } in
      t.n_kids <- kid :: t.n_kids;
      let cancel =
        Sched.fork_cancellable (fun () ->
            if killable then Sched.set_killable true;
            let failure =
              match f () with
              | () -> None
              | exception (Sched.Cancelled | Sched.Killed) -> None
              | exception e -> Some e
            in
            kid.k_cancel <- None;
            t.n_live <- t.n_live - 1;
            (match failure with
            | Some e when t.n_first = None ->
                t.n_first <- Some e;
                cancel_scope t
            | _ -> ());
            if t.n_live = 0 || t.n_first <> None then wake t)
      in
      (* if the child already finished, this handle is a harmless no-op *)
      kid.k_cancel <- Some cancel
    end

  let check t = match t.n_first with Some e -> raise e | None -> ()

  let rec join t =
    check t;
    if t.n_live > 0 then begin
      let ctl = Sched.current_ctl () in
      Sched.suspend (fun r ->
          t.n_joiner <- Some r;
          match ctl with
          | Some c -> Sched.Ctl.set_cleanup c (fun () -> t.n_joiner <- None)
          | None -> ());
      join t
    end

  let run ?clock ?(name = "nursery") body =
    let t =
      {
        n_name = name;
        n_live = 0;
        n_first = None;
        n_kids = [];
        n_closing = false;
        n_joiner = None;
      }
    in
    (* Scope markers for the causal layer; emitted even when the body
       raises, so every begin has a matching end in a complete log. *)
    let mark ev =
      if Trace.on () then
        let ts = match clock with Some c -> c () | None -> Retrofit_util.Vclock.now () in
        Trace.emit ~ts ev
    in
    mark (Tev.Nursery_begin { name });
    let finally () = mark (Tev.Nursery_end { name }) in
    let result = match body t with v -> Ok v | exception e -> Error e in
    t.n_closing <- true;
    (* scope exit cancels every still-running child, exactly once each *)
    cancel_scope t;
    let we_were_cancelled = ref false in
    let rec drain () =
      if t.n_live > 0 then begin
        match
          let ctl = Sched.current_ctl () in
          Sched.suspend (fun r ->
              t.n_joiner <- Some r;
              match ctl with
              | Some c ->
                  Sched.Ctl.set_cleanup c (fun () -> t.n_joiner <- None)
              | None -> ())
        with
        | () -> drain ()
        | exception Sched.Cancelled ->
            (* we are being cancelled ourselves and can no longer park;
               the children are already cancelled and unwind on their
               own *)
            we_were_cancelled := true
      end
    in
    drain ();
    (* all children are gone: close the span before any re-raise below *)
    finally ();
    match result with
    | Error e -> raise e
    | Ok v -> (
        if !we_were_cancelled then raise Sched.Cancelled;
        match t.n_first with Some e -> raise e | None -> v)

  let name t = t.n_name
end
