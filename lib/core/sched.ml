module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics
module Rng = Retrofit_util.Rng

type policy = Fifo | Lifo

type 'a resumer = 'a -> unit

exception Cancelled

exception Killed

exception One_shot

(* Cancellation protocol (§2.3): a cancellable fiber owns a control cell
   shared between its runner and the cancel handle.  While the fiber is
   parked the cell holds a discontinue hook; cancel fires it exactly
   once, turning the suspension's resumer into a no-op.  The same cell
   protocol is reused by Aio for reads parked in its pending set. *)
module Ctl = struct
  type t = {
    mutable requested : bool;
    mutable parked : (exn -> unit) option;
    mutable finished : bool;
    mutable killable : bool;
    mutable cleanup : (unit -> unit) option;
        (* fired exactly once when cancel strikes while this cell is
           parked (or armed for its next park): lets wait queues purge
           the dead waiter eagerly instead of leaving a no-op resumer
           behind.  Cleared on a normal resume. *)
  }

  let create () =
    {
      requested = false;
      parked = None;
      finished = false;
      killable = false;
      cleanup = None;
    }

  let finish t = t.finished <- true

  let cancelled t = t.requested

  let set_parked t d = t.parked <- Some d

  let clear_parked t = t.parked <- None

  let set_killable_cell t b = t.killable <- b

  let set_cleanup t f = t.cleanup <- Some f

  let clear_cleanup t = t.cleanup <- None

  let run_cleanup t =
    match t.cleanup with
    | Some f ->
        t.cleanup <- None;
        f ()
    | None -> ()

  let cancel t =
    if (not t.finished) && not t.requested then begin
      t.requested <- true;
      run_cleanup t;
      match t.parked with
      | Some d ->
          t.parked <- None;
          d Cancelled
      | None -> ()
    end

  (* Wire one suspension point.  The returned resumer enqueues a resume
     on first use, raises [One_shot] on a second use, and becomes a
     no-op once the suspension has been cancelled. *)
  let arm ?ctl ~enqueue ~continue ~discontinue =
    let state = ref `Waiting in
    (match ctl with
    | Some c ->
        set_parked c (fun e ->
            state := `Cancelled;
            enqueue (fun () -> discontinue e))
    | None -> ());
    fun v ->
      match !state with
      | `Waiting ->
          state := `Resumed;
          (match ctl with
          | Some c ->
              clear_parked c;
              clear_cleanup c
          | None -> ());
          enqueue (fun () -> continue v)
      | `Resumed -> raise One_shot
      | `Cancelled -> ()
end

(* Deterministic adversarial scheduling (chaos mode).  Every decision is
   drawn from a dedicated xoshiro stream seeded by the config, at sites
   whose order is itself deterministic (the cooperative scheduler's
   enqueue/dequeue sequence), so a chaos run is a pure function of
   (workload seed, chaos seed): double runs are byte-identical and a
   failing seed shrinks like a conformance-oracle diff. *)
module Chaos = struct
  type t = {
    seed : int;
    kill_rate : float;  (** P(kill a killable fiber at a suspension point) *)
    delay_rate : float;  (** P(stash a resume for a few scheduler ops) *)
    max_delay : int;  (** max stash duration, in dequeue steps *)
    reorder_rate : float;  (** P(dequeue an adversarial position instead) *)
    spurious_rate : float;  (** P(inject a spurious wakeup alongside a push) *)
  }

  let default ~seed =
    {
      seed;
      kill_rate = 0.002;
      delay_rate = 0.05;
      max_delay = 4;
      reorder_rate = 0.1;
      spurious_rate = 0.02;
    }

  type stats = { kills : int; delays : int; reorders : int; spurious : int }

  type state = {
    cfg : t;
    rng : Rng.t;
    mutable delayed : (int * (unit -> unit)) list;
        (* (remaining dequeue steps, thunk), in stash order *)
    mutable kills : int;
    mutable delays : int;
    mutable reorders : int;
    mutable spurious : int;
  }

  let latest : state option ref = ref None

  let make cfg =
    let st =
      {
        cfg;
        rng = Rng.create cfg.seed;
        delayed = [];
        kills = 0;
        delays = 0;
        reorders = 0;
        spurious = 0;
      }
    in
    latest := Some st;
    st

  let hit st rate = rate > 0.0 && Rng.float st.rng 1.0 < rate

  let snapshot st =
    {
      kills = st.kills;
      delays = st.delays;
      reorders = st.reorders;
      spurious = st.spurious;
    }

  let inject _st kind =
    if Metrics.on () then
      Metrics.inc "sched_chaos_injections_total" ~labels:[ ("kind", kind) ];
    if Trace.on () then Trace.emit ~ts:0 (Tev.Chaos_inject { kind })

  (* Turn a runner's raw (push, pop) pair into the chaos-perturbed pair.
     [run_next] must be tied to the runner's drain function before the
     first pop: spurious wakeups are raw queue entries and must keep the
     drain chain alive (a bare no-op thunk would stall the runner). *)
  let wrap st ~push ~pop ~depth ~pop_nth ~run_next =
    let cpush thunk =
      (if hit st st.cfg.delay_rate then begin
         st.delays <- st.delays + 1;
         inject st "delay";
         let ttl = 1 + Rng.int st.rng st.cfg.max_delay in
         st.delayed <- st.delayed @ [ (ttl, thunk) ]
       end
       else push thunk);
      if hit st st.cfg.spurious_rate then begin
        st.spurious <- st.spurious + 1;
        inject st "spurious";
        push (fun () -> !run_next ())
      end
    in
    let cpop () =
      (* age the stash; expired resumes rejoin the queue in order *)
      (if st.delayed <> [] then
         let due, still = List.partition (fun (ttl, _) -> ttl <= 1) st.delayed in
         st.delayed <- List.map (fun (ttl, t) -> (ttl - 1, t)) still;
         List.iter (fun (_, t) -> push t) due);
      let d = depth () in
      if d = 0 then
        (* never strand a stashed resume: if the queue ran dry, the
           oldest delayed thunk runs now regardless of its ttl *)
        match st.delayed with
        | (_, t) :: rest ->
            st.delayed <- rest;
            Some t
        | [] -> None
      else if d > 1 && hit st st.cfg.reorder_rate then begin
        st.reorders <- st.reorders + 1;
        inject st "reorder";
        Some (pop_nth (1 + Rng.int st.rng (d - 1)))
      end
      else pop ()
    in
    (cpush, cpop)

  (* Seeded kill: fires only for fibers that opted in via
     [set_killable], and only at a suspension point, where discontinuing
     is always legal. *)
  let kill_draw st_opt (ctl : Ctl.t option) =
    match (st_opt, ctl) with
    | Some st, Some c
      when c.Ctl.killable && (not c.Ctl.requested) && not c.Ctl.finished ->
        if hit st st.cfg.kill_rate then begin
          st.kills <- st.kills + 1;
          inject st "kill";
          if Metrics.on () then Metrics.inc "sched_chaos_kills_total";
          true
        end
        else false
    | _ -> false
end

let chaos_stats () = Option.map Chaos.snapshot !Chaos.latest

type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Fork_cancellable : (unit -> unit) -> (unit -> unit) Effect.t
  | Set_killable : bool -> unit Effect.t
  | Current_ctl : Ctl.t option Effect.t

let fork f = Effect.perform (Fork f)

let fork_cancellable f = Effect.perform (Fork_cancellable f)

let yield () = Effect.perform Yield

let suspend f = Effect.perform (Suspend f)

let set_killable b =
  try Effect.perform (Set_killable b) with Effect.Unhandled _ -> ()

let current_ctl () =
  try Effect.perform Current_ctl with Effect.Unhandled _ -> None

let switches = ref 0

let stats_switches () = !switches

(* The run queue holds thunks rather than bare continuations so that
   resumers can close over the value to deliver (§3.1's asynchronous
   variant uses the same representation). *)
type runq = {
  queue : (unit -> unit) Queue.t;
  stack : (unit -> unit) Stack.t;
  policy : policy;
  mutable ops : int;
      (* enqueue/dequeue sequence number: the deterministic time base
         that stamps this scheduler's depth track in the eventlog *)
}

let rq_depth rq = Queue.length rq.queue + Stack.length rq.stack

let rq_observe rq =
  rq.ops <- rq.ops + 1;
  Trace.emit ~ts:rq.ops (Tev.Runq_depth { depth = rq_depth rq })

let rq_push rq thunk =
  (match rq.policy with
  | Fifo -> Queue.push thunk rq.queue
  | Lifo -> Stack.push thunk rq.stack);
  if Metrics.on () then Metrics.inc "sched_runq_pushes_total";
  if Trace.on () then rq_observe rq

let rq_pop rq =
  let popped =
    match rq.policy with
    | Fifo -> (
        match Queue.pop rq.queue with t -> Some t | exception Queue.Empty -> None)
    | Lifo -> (
        match Stack.pop rq.stack with t -> Some t | exception Stack.Empty -> None)
  in
  (match popped with Some _ when Trace.on () -> rq_observe rq | _ -> ());
  popped

(* Dequeue the element [n] positions below the normal one, preserving
   the relative order of the elements skipped over. *)
let rq_pop_nth rq n =
  match rq.policy with
  | Fifo ->
      let rec rotate i =
        if i > 0 then begin
          Queue.push (Queue.pop rq.queue) rq.queue;
          rotate (i - 1)
        end
      in
      let len = Queue.length rq.queue in
      let n = n mod len in
      (* take the n-th: rotate it to the front, pop, then restore order *)
      rotate n;
      let target = Queue.pop rq.queue in
      rotate (len - 1 - n);
      target
  | Lifo ->
      let skipped = ref [] in
      for _ = 1 to n mod Stack.length rq.stack do
        skipped := Stack.pop rq.stack :: !skipped
      done;
      let target = Stack.pop rq.stack in
      List.iter (fun t -> Stack.push t rq.stack) !skipped;
      target

let run ?(policy = Fifo) ?chaos ?(clock = Retrofit_util.Vclock.now) ?idle main =
  let rq = { queue = Queue.create (); stack = Stack.create (); policy; ops = 0 } in
  switches := 0;
  let chst = Option.map Chaos.make chaos in
  let run_next_cell = ref (fun () -> ()) in
  let push, pop =
    match chst with
    | None -> (rq_push rq, fun () -> rq_pop rq)
    | Some st ->
        Chaos.wrap st ~push:(rq_push rq)
          ~pop:(fun () -> rq_pop rq)
          ~depth:(fun () -> rq_depth rq)
          ~pop_nth:(rq_pop_nth rq) ~run_next:run_next_cell
  in
  (* Runnable-wait instrumentation sits {e above} the chaos wrap: a
     resume stashed by the chaos delay fault is still runnable the whole
     time, so its stash duration must count as scheduler wait.  Chaos's
     own spurious wakeups go through the raw push underneath and are
     never tagged.  With tracing and metrics both off this is the bare
     push — no clock reads, no closure per thunk. *)
  let push_r reason thunk =
    if Trace.on () || Metrics.on () then begin
      let t0 = clock () in
      push (fun () ->
          let w = clock () - t0 in
          let w = if w < 0 then 0 else w in
          if Metrics.on () then
            Metrics.observe ~max_value:1_000_000_000
              "scheduler_runnable_wait_ns" w;
          if Trace.on () then
            Trace.emit ~ts:(clock ()) (Tev.Wakeup { reason; wait_ns = w });
          thunk ())
    end
    else push thunk
  in
  (* The control cell of the fiber currently executing; every thunk that
     re-enters a fiber restores it so nested suspensions park against
     the right cell. *)
  let current : Ctl.t option ref = ref None in
  let rec run_next () =
    match pop () with
    | Some thunk ->
        incr switches;
        if Metrics.on () then Metrics.inc "sched_switches_total";
        thunk ()
    | None -> (
        match idle with
        | Some f -> if f () then run_next ()
        | None -> ())
  in
  run_next_cell := run_next;
  let kill_draw ctl = Chaos.kill_draw chst ctl in
  let rec spawn : Ctl.t option -> (unit -> unit) -> unit =
   fun ctl f ->
    current := ctl;
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc =
          (fun () ->
            (match ctl with Some c -> Ctl.finish c | None -> ());
            run_next ());
        exnc =
          (fun e ->
            (* A discontinued fiber unwinds with Cancelled after its
               cleanup handlers; that is a normal exit, not an error.
               A chaos-killed fiber unwinds with Killed the same way. *)
            match (ctl, e) with
            | Some c, Cancelled when Ctl.cancelled c ->
                Ctl.finish c;
                run_next ()
            | Some c, Killed ->
                Ctl.finish c;
                Ctl.run_cleanup c;
                run_next ()
            | _ -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    if kill_draw ctl then
                      push_r "kill" (fun () ->
                          current := ctl;
                          Effect.Deep.discontinue k Killed)
                    else
                      push_r "yield" (fun () ->
                          current := ctl;
                          Effect.Deep.continue k ());
                    run_next ())
            | Fork f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    push_r "fork" (fun () ->
                        current := ctl;
                        Effect.Deep.continue k ());
                    spawn None f')
            | Fork_cancellable f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let parent = !current in
                    let child = Ctl.create () in
                    push_r "fork" (fun () ->
                        current := parent;
                        Effect.Deep.continue k (fun () -> Ctl.cancel child));
                    spawn (Some child) f')
            | Suspend f ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    (match ctl with
                    | Some c when Ctl.cancelled c ->
                        (* Cancel arrived before this park: discontinue
                           straight away instead of parking. *)
                        push_r "cancel" (fun () ->
                            current := ctl;
                            Effect.Deep.discontinue k Cancelled)
                    | _ ->
                        if kill_draw ctl then
                          (* killed instead of parked: the waiter is
                             never handed to [f], so no queue ever holds
                             a dead resumer for it *)
                          push_r "kill" (fun () ->
                              current := ctl;
                              Effect.Deep.discontinue k Killed)
                        else
                          let resumer =
                            Ctl.arm ?ctl ~enqueue:(push_r "wakeup")
                              ~continue:(fun v ->
                                current := ctl;
                                Effect.Deep.continue k v)
                              ~discontinue:(fun e ->
                                current := ctl;
                                Effect.Deep.discontinue k e)
                          in
                          f resumer);
                    run_next ())
            | Set_killable b ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    (match !current with
                    | Some c -> c.Ctl.killable <- b
                    | None -> ());
                    Effect.Deep.continue k ())
            | Current_ctl ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    Effect.Deep.continue k !current)
            | _ -> None);
      }
  in
  spawn None main
