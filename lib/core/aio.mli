(** Asynchronous I/O via effects: the run functions of §3.1.

    Client code performs [In_line]/[Out_str] through {!input_line} and
    {!output_string} — the same signatures as the standard library — and
    composes with {!Sched.fork} and {!Sched.yield}.  The choice between
    blocking and asynchronous I/O is made {e solely} by the runner:

    - {!run_sync} services each read by blocking (advancing virtual
      time) while every other thread waits;
    - {!run_async} parks readers, lets other threads run, and only
      advances time when all threads are blocked — the paper's
      [pending_reads]/[do_reads] structure.

    Requirement R4 (forwards compatibility) is thus observable: the
    same client code, run under [run_async], overlaps its I/O; virtual
    completion times prove it (see the tests and the async_io example).

    Exceptional completions use [discontinue]: end of input raises
    [End_of_file] and closed channels [Sys_error] at the perform site,
    so defensive resource-cleanup code written for blocking I/O (§3.2)
    keeps working.  Cancellation uses the same mechanism: a fiber
    spawned with {!Sched.fork_cancellable} under {!run_async} can be
    cancelled while parked — in a [Suspend] {e or} in a pending read —
    and is discontinued with {!Sched.Cancelled}, running its cleanup
    handlers; its resumer (or read completion) becomes a no-op.
    A resumer invoked twice raises {!Sched.One_shot}, as under
    {!Sched.run}. *)

val input_line : Chan.ic -> string
(** Performs [In_line]; must run under one of the runners. *)

val output_string : Chan.oc -> string -> unit
(** Performs [Out_str]. *)

val run_sync : ?chaos:Sched.Chaos.t -> Evloop.t -> (unit -> unit) -> unit
(** Also handles {!Sched.Fork}, {!Sched.Yield}, {!Sched.Suspend} and
    {!Sched.Fork_cancellable}, so threads, MVars and cancellation work
    under it.  Reads block inline, so a sync read cannot be cancelled
    mid-wait.  [chaos] enables the same seeded adversarial policy as
    {!Sched.run}: kills at suspension points (including parked reads),
    delayed resumes, reorders, spurious wakeups. *)

val run_async : ?chaos:Sched.Chaos.t -> Evloop.t -> (unit -> unit) -> unit

type timeout_status = [ `Running | `Done | `Cancelled ]

val timeout : Evloop.t -> delay:int -> (unit -> unit) -> unit -> timeout_status
(** [timeout loop ~delay f] forks [f] cancellably and registers a
    virtual-time timer that cancels it if it is still running [delay]
    ns later; built on {!Sched.fork_cancellable} exactly as §2.3
    prescribes.  Returns a status thunk.  Must be called from inside a
    runner.  The timer only fires when the event loop advances, i.e.
    when all threads are parked on I/O (the only situation in which
    virtual time passes). *)

val copy : Chan.ic -> Chan.oc -> unit
(** The §3.2 copy loop, verbatim in structure: reads lines until
    [End_of_file], closing both channels on all exits and re-raising
    unexpected exceptions.  Works unchanged under both runners, and —
    because the cleanup is exception-driven — releases its channels
    when cancelled mid-read. *)
