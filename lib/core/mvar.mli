(** MVars: synchronising cells for scheduler threads.

    An MVar is either empty or holds one value.  [take] on an empty
    MVar and [put] on a full one park the calling thread via
    {!Sched.suspend}; resumptions preserve FIFO order.  This is the
    synchronisation primitive of the chameneos benchmark (§6.3.2) and of
    the concurrency-monad comparison (§6.2). *)

type 'a t

val create_empty : unit -> 'a t

val create : 'a -> 'a t

val take : 'a t -> 'a
(** Must run inside {!Sched.run}. *)

val put : 'a t -> 'a -> unit
(** Must run inside {!Sched.run}. *)

val try_take : 'a t -> 'a option
(** Non-blocking: [None] when empty. *)

val is_empty : 'a t -> bool

val waiters : 'a t -> int
(** Number of live parked waiters (takers when empty, putters when
    full).  Fibers cancelled while parked are purged eagerly — via
    {!Sched.Ctl.set_cleanup} — so they never count here, and a
    cancelled [put] never deposits its value. *)
