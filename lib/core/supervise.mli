(** Erlang-style supervision trees and Trio-style nurseries over the
    §3.1 scheduler.

    Supervisors are ordinary fibers; each child runs inside an effect
    handler that serves the {!self_path}/{!heartbeat} introspection
    effects and funnels every possible end of the fiber — normal
    return, escaped exception, {!Sched.Cancelled} or {!Sched.Killed}
    unwind — into one exit message to the parent.  Restart strategies,
    intensity windows and escalation are plain message-loop logic: the
    paper's claim that retrofitted handlers make concurrency patterns
    library code, applied to OTP.

    Time is virtual: pass [clock] (e.g. [Evloop.now loop]) and restart
    windows / heartbeat staleness become deterministic in the seed. *)

exception Escalation of string
(** Raised (internally) by a supervisor whose restart budget is blown;
    carries the supervisor's path.  A parent supervisor sees it as a
    child crash and restarts the whole subtree; at the root it becomes
    {!Gave_up}. *)

type strategy =
  | One_for_one  (** restart only the exited child *)
  | One_for_all  (** kill and restart all children *)
  | Rest_for_one  (** kill and restart the exited child and all started after it *)

type restart =
  | Permanent  (** always restart, even after a normal exit *)
  | Transient  (** restart only after an abnormal exit (crash, or a kill
                   the supervisor did not itself request) *)
  | Temporary  (** never restart *)

type exit_reason = Exit_normal | Exit_crashed of exn | Exit_killed

val reason_label : exit_reason -> string

type outcome = Completed | Gave_up of string

type event =
  | Started of string
  | Exited of string * exit_reason
  | Restarted of string
  | Escalated of string
  | Stopped of string

type spec

val worker : ?restart:restart -> ?killable:bool -> string -> (unit -> unit) -> spec
(** A leaf child.  [restart] defaults to [Transient]; [killable]
    (default [true]) opts the fiber into chaos kills — it has a restart
    story, after all. *)

val supervisor :
  ?strategy:strategy -> ?max_restarts:int -> ?window:int -> string -> spec list -> spec
(** A supervisor child.  At most [max_restarts] (default 3) restarts
    within [window] clock units (default 0 = unbounded window, i.e. a
    total budget); one more escalates.  Supervisor fibers are never
    killable — chaos targets the leaves. *)

(** A single-reader mailbox: [send] never blocks, [recv] parks.
    A reader cancelled while parked is purged eagerly, so a later
    [send] queues the message rather than losing it to a dead
    resumer. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t

  val send : 'a t -> 'a -> unit

  val recv : 'a t -> 'a
  (** Must run inside a runner. *)
end

val self_path : unit -> string
(** The supervision-tree path of the calling worker (e.g.
    ["root/listeners/accept-0"]); ["?"] outside a supervised fiber. *)

val heartbeat : unit -> unit
(** Stamp the calling worker's heartbeat with the tree clock; the
    watchdog pattern reads it back via {!last_heartbeat}.  A no-op
    outside a supervised fiber. *)

type handle

val start :
  ?clock:(unit -> int) -> ?on_event:(event -> unit) -> spec -> handle
(** Fork the tree (root spec must be a supervisor) and return its
    handle.  The whole tree is running — every worker forked, every
    supervisor parked on its mailbox — when this returns.  [on_event]
    observes lifecycle transitions; supervision trace events and
    metrics are emitted regardless when enabled. *)

val running : handle -> bool

val wait : handle -> outcome
(** Park until the tree finishes: {!Completed} when stopped or every
    child reached a terminal state, {!Gave_up} when the root blew its
    restart budget. *)

val shutdown : handle -> outcome
(** Graceful, bottom-up teardown: each supervisor stops its children in
    reverse start order (sub-supervisors recursively first), workers
    are cancelled and unwind through their cleanup handlers.  Then
    behaves as {!wait}. *)

val kill : handle -> string -> bool
(** [kill h name] force-kills the named child (leaf name, e.g.
    ["accept-0"]) — an {e abnormal} exit, so its supervisor restarts it
    per its restart policy.  This is the watchdog's hammer.  [false] if
    no such child is running. *)

val last_heartbeat : handle -> string -> int option

val restarts : handle -> int
(** Restart actions performed so far, tree-wide. *)

val escalations : handle -> int

(** Structured concurrency: children never outlive the scope.

    [run body] passes a fresh scope to [body]; children forked into it
    with {!Nursery.fork} are cancelled when the scope exits (so a body
    that wants its children's results must {!Nursery.join} first).  The
    first unhandled child exception cancels the siblings and re-raises
    at the scope; cancellation reaches each fiber exactly once
    ({!Sched.Ctl.cancel} is one-shot).  Children are killable by
    default: a chaos kill of a child is {e not} a failure of the scope
    (the supervisor above is in charge of restarts). *)
module Nursery : sig
  type t

  val run : ?clock:(unit -> int) -> ?name:string -> (t -> 'a) -> 'a
  (** Raises the body's exception, or the first child failure, after
      all children have been cancelled and have unwound.  When tracing
      is on, the scope emits [Nursery_begin]/[Nursery_end] span markers
      stamped from [clock] (default {!Retrofit_util.Vclock.now}). *)

  val fork : ?killable:bool -> t -> (unit -> unit) -> unit
  (** No-op if the scope is already failing or closing. *)

  val join : t -> unit
  (** Park until every child has finished; raises the first child
      failure as soon as it happens. *)

  val check : t -> unit
  (** Raise the first child failure now, if any. *)

  val failed : t -> exn option

  val live : t -> int

  val cancel_scope : t -> unit
  (** Cancel every still-running child now (each exactly once). *)

  val name : t -> string
end
