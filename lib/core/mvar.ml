(* State machine: Empty with a queue of parked takers, or Full with the
   value and a queue of parked putters (each carrying the value it wants
   to deposit).

   Waiters carry a liveness flag tied to their fiber's cancellation
   cell: a fiber cancelled while parked here is purged from the queue
   eagerly (via Ctl.set_cleanup), so no dead resumer ever lingers to
   skew the queue-depth accounting — and a cancelled put never deposits
   its value. *)

type 'a waiter = { resume : 'a Sched.resumer; live : bool ref }

type 'a state =
  | Empty of 'a waiter Queue.t
  | Full of 'a * ('a * unit waiter) Queue.t

type 'a t = { mutable state : 'a state }

let create_empty () = { state = Empty (Queue.create ()) }

let create v = { state = Full (v, Queue.create ()) }

let purge q live_of =
  let keep = Queue.create () in
  let rec go () =
    match Queue.pop q with
    | n ->
        if !(live_of n) then Queue.push n keep;
        go ()
    | exception Queue.Empty -> ()
  in
  go ();
  Queue.transfer keep q

(* The control cell is fetched before suspending: effects cannot be
   performed from inside the suspend callback (it runs in the
   scheduler's handler context).

   pop the first live waiter, dropping dead ones encountered on the way
   (belt and braces: cleanup should already have purged them) *)
let rec pop_live q =
  match Queue.pop q with
  | n -> if !(n.live) then Some n else pop_live q
  | exception Queue.Empty -> None

let rec pop_live_putter q =
  match Queue.pop q with
  | (v, n) -> if !(n.live) then Some (v, n) else pop_live_putter q
  | exception Queue.Empty -> None

let take t =
  match t.state with
  | Empty takers ->
      let ctl = Sched.current_ctl () in
      Sched.suspend (fun resume ->
          let live = ref true in
          Queue.push { resume; live } takers;
          match ctl with
          | Some c ->
              Sched.Ctl.set_cleanup c (fun () ->
                  live := false;
                  purge takers (fun n -> n.live))
          | None -> ())
  | Full (v, putters) ->
      (match pop_live_putter putters with
      | Some (v', n) ->
          t.state <- Full (v', putters);
          n.resume ()
      | None -> t.state <- Empty (Queue.create ()));
      v

let put t v =
  match t.state with
  | Full (_, putters) ->
      let ctl = Sched.current_ctl () in
      Sched.suspend (fun resume ->
          let live = ref true in
          Queue.push (v, { resume; live }) putters;
          match ctl with
          | Some c ->
              Sched.Ctl.set_cleanup c (fun () ->
                  live := false;
                  purge putters (fun (_, n) -> n.live))
          | None -> ())
  | Empty takers -> (
      match pop_live takers with
      | Some n -> n.resume v
      | None -> t.state <- Full (v, Queue.create ()))

let try_take t =
  match t.state with
  | Empty _ -> None
  | Full (v, putters) ->
      (match pop_live_putter putters with
      | Some (v', n) ->
          t.state <- Full (v', putters);
          n.resume ()
      | None -> t.state <- Empty (Queue.create ()));
      Some v

let is_empty t = match t.state with Empty _ -> true | Full _ -> false

let waiters t =
  match t.state with
  | Empty takers ->
      Queue.fold (fun acc n -> if !(n.live) then acc + 1 else acc) 0 takers
  | Full (_, putters) ->
      Queue.fold (fun acc (_, n) -> if !(n.live) then acc + 1 else acc) 0 putters
