module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics

type _ Effect.t +=
  | In_line : Chan.ic -> string Effect.t
  | Out_str : Chan.oc * string -> unit Effect.t

let input_line ic = Effect.perform (In_line ic)

let output_string oc s = Effect.perform (Out_str (oc, s))

(* A parked read: the channel, the continuation expecting the line, the
   owning fiber's control cell, and a liveness flag cleared when the
   read is cancelled (so the ready-scan skips it). *)
type pending =
  | Pending : {
      ic : Chan.ic;
      k : (string, unit) Effect.Deep.continuation;
      ctl : Sched.Ctl.t option;
      live : bool ref;
    }
      -> pending

type mode = Sync | Async

type timeout_status = [ `Running | `Done | `Cancelled ]

let run_mode mode ?chaos loop main =
  let runq : (unit -> unit) Queue.t = Queue.create () in
  let current : Sched.Ctl.t option ref = ref None in
  let raw_enqueue thunk =
    Queue.push thunk runq;
    if Metrics.on () then Metrics.inc "sched_runq_pushes_total";
    if Trace.on () then
      Trace.emit ~ts:(Evloop.now loop) (Tev.Runq_depth { depth = Queue.length runq })
  in
  let raw_pop () =
    match Queue.pop runq with t -> Some t | exception Queue.Empty -> None
  in
  (* Dequeue the element [n] positions in, preserving relative order of
     the ones skipped over (chaos reorder). *)
  let pop_nth n =
    let rotate i =
      for _ = 1 to i do
        Queue.push (Queue.pop runq) runq
      done
    in
    let len = Queue.length runq in
    let n = n mod len in
    rotate n;
    let target = Queue.pop runq in
    rotate (len - 1 - n);
    target
  in
  let chst = Option.map Sched.Chaos.make chaos in
  let run_next_cell = ref (fun () -> ()) in
  let enqueue, pop =
    match chst with
    | None -> (raw_enqueue, raw_pop)
    | Some st ->
        Sched.Chaos.wrap st ~push:raw_enqueue ~pop:raw_pop
          ~depth:(fun () -> Queue.length runq)
          ~pop_nth ~run_next:run_next_cell
  in
  let kill_draw ctl = Sched.Chaos.kill_draw chst ctl in
  (* Runnable-wait instrumentation above the chaos wrap, mirroring
     Sched.run: record how long each thunk sat runnable (on this loop's
     virtual clock) and the reason it became runnable. *)
  let enqueue_r reason thunk =
    if Trace.on () || Metrics.on () then begin
      let t0 = Evloop.now loop in
      enqueue (fun () ->
          let w = Evloop.now loop - t0 in
          let w = if w < 0 then 0 else w in
          if Metrics.on () then
            Metrics.observe ~max_value:1_000_000_000
              "scheduler_runnable_wait_ns" w;
          if Trace.on () then
            Trace.emit ~ts:(Evloop.now loop) (Tev.Wakeup { reason; wait_ns = w });
          thunk ())
    end
    else enqueue thunk
  in
  let pending_reads : pending list ref = ref [] in
  (* The event-loop clock stamps this loop's I/O depth track. *)
  let observe_pending () =
    if Trace.on () then
      Trace.emit ~ts:(Evloop.now loop)
        (Tev.Io_pending { depth = List.length !pending_reads })
  in
  let resume_read (Pending p) =
    (match p.ctl with Some c -> Sched.Ctl.clear_parked c | None -> ());
    let restore () = current := p.ctl in
    match Chan.read_line_nonblock p.ic with
    | `Line line ->
        enqueue_r "io-line" (fun () ->
            restore ();
            Effect.Deep.continue p.k line)
    | `Eof ->
        enqueue_r "io-eof" (fun () ->
            restore ();
            Effect.Deep.discontinue p.k End_of_file)
    | `Not_ready -> assert false
    | exception (Sys_error _ as e) ->
        enqueue_r "io-error" (fun () ->
            restore ();
            Effect.Deep.discontinue p.k e)
  in
  let rec run_next () =
    match pop () with
    | Some thunk -> thunk ()
    | None -> (
        pending_reads := List.filter (fun (Pending p) -> !(p.live)) !pending_reads;
        match !pending_reads with
        | [] -> ()
        | todo ->
            (* Every thread is parked on I/O: advance virtual time until
               at least one read completes (the do_reads of §3.1) or a
               timer callback schedules work (e.g. a timeout firing a
               cancel). *)
            let progressed =
              Evloop.advance_until loop (fun () ->
                  (not (Queue.is_empty runq))
                  || List.exists (fun (Pending p) -> !(p.live) && Chan.readable p.ic) todo)
            in
            if Queue.is_empty runq && not progressed then
              failwith "Aio: all threads blocked and no input will ever arrive";
            let ready, still =
              List.partition (fun (Pending p) -> !(p.live) && Chan.readable p.ic) todo
            in
            pending_reads := List.filter (fun (Pending p) -> !(p.live)) still;
            observe_pending ();
            List.iter resume_read ready;
            run_next ())
  in
  run_next_cell := run_next;
  let rec spawn : Sched.Ctl.t option -> (unit -> unit) -> unit =
   fun ctl f ->
    current := ctl;
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc =
          (fun () ->
            (match ctl with Some c -> Sched.Ctl.finish c | None -> ());
            run_next ());
        exnc =
          (fun e ->
            match (ctl, e) with
            | Some c, Sched.Cancelled when Sched.Ctl.cancelled c ->
                Sched.Ctl.finish c;
                run_next ()
            | Some c, Sched.Killed ->
                Sched.Ctl.finish c;
                Sched.Ctl.run_cleanup c;
                run_next ()
            | _ -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Sched.Yield ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    if kill_draw ctl then
                      enqueue_r "kill" (fun () ->
                          current := ctl;
                          Effect.Deep.discontinue k Sched.Killed)
                    else
                      enqueue_r "yield" (fun () ->
                          current := ctl;
                          Effect.Deep.continue k ());
                    run_next ())
            | Sched.Fork f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    enqueue_r "fork" (fun () ->
                        current := ctl;
                        Effect.Deep.continue k ());
                    spawn None f')
            | Sched.Fork_cancellable f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let parent = !current in
                    let child = Sched.Ctl.create () in
                    enqueue_r "fork" (fun () ->
                        current := parent;
                        Effect.Deep.continue k (fun () -> Sched.Ctl.cancel child));
                    spawn (Some child) f')
            | Sched.Suspend g ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    (match ctl with
                    | Some c when Sched.Ctl.cancelled c ->
                        enqueue_r "cancel" (fun () ->
                            current := ctl;
                            Effect.Deep.discontinue k Sched.Cancelled)
                    | _ ->
                        if kill_draw ctl then
                          (* killed instead of parked: the waiter is
                             never handed to [g], so no queue ever holds
                             a dead resumer for it *)
                          enqueue_r "kill" (fun () ->
                              current := ctl;
                              Effect.Deep.discontinue k Sched.Killed)
                        else
                          let resumer =
                            Sched.Ctl.arm ?ctl ~enqueue:(enqueue_r "wakeup")
                              ~continue:(fun v ->
                                current := ctl;
                                Effect.Deep.continue k v)
                              ~discontinue:(fun e ->
                                current := ctl;
                                Effect.Deep.discontinue k e)
                          in
                          g resumer);
                    run_next ())
            | In_line ic ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    match mode with
                    | Sync -> (
                        match Chan.read_line_blocking ic with
                        | line -> Effect.Deep.continue k line
                        | exception e -> Effect.Deep.discontinue k e)
                    | Async -> (
                        match Chan.read_line_nonblock ic with
                        | `Line line -> Effect.Deep.continue k line
                        | `Eof -> Effect.Deep.discontinue k End_of_file
                        | `Not_ready ->
                            let ctl = !current in
                            (match ctl with
                            | Some c when Sched.Ctl.cancelled c ->
                                enqueue_r "cancel" (fun () ->
                                    current := ctl;
                                    Effect.Deep.discontinue k Sched.Cancelled)
                            | _ ->
                                if kill_draw ctl then
                                  enqueue_r "kill" (fun () ->
                                      current := ctl;
                                      Effect.Deep.discontinue k Sched.Killed)
                                else begin
                                  let live = ref true in
                                  (match ctl with
                                  | Some c ->
                                      Sched.Ctl.set_parked c (fun e ->
                                          live := false;
                                          (* eager purge: drop the dead
                                             read now, so the pending
                                             depth metric never counts
                                             cancelled waiters *)
                                          pending_reads :=
                                            List.filter
                                              (fun (Pending p) -> !(p.live))
                                              !pending_reads;
                                          observe_pending ();
                                          enqueue_r "cancel" (fun () ->
                                              current := ctl;
                                              Effect.Deep.discontinue k e))
                                  | None -> ());
                                  pending_reads :=
                                    Pending { ic; k; ctl; live } :: !pending_reads;
                                  if Metrics.on () then
                                    Metrics.inc "aio_parked_reads_total";
                                  observe_pending ()
                                end);
                            run_next ()
                        | exception (Sys_error _ as e) ->
                            Effect.Deep.discontinue k e))
            | Out_str (oc, s) ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    match Chan.write_string oc s with
                    | () -> Effect.Deep.continue k ()
                    | exception e -> Effect.Deep.discontinue k e)
            | Sched.Set_killable b ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    (match !current with
                    | Some c -> Sched.Ctl.set_killable_cell c b
                    | None -> ());
                    Effect.Deep.continue k ())
            | Sched.Current_ctl ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    Effect.Deep.continue k !current)
            | _ -> None);
      }
  in
  spawn None main

let run_sync ?chaos loop main = run_mode Sync ?chaos loop main

let run_async ?chaos loop main = run_mode Async ?chaos loop main

let timeout loop ~delay f =
  let state = ref (`Running : timeout_status) in
  let cancel =
    Sched.fork_cancellable (fun () ->
        f ();
        state := `Done)
  in
  Evloop.after loop ~delay (fun () ->
      if !state = `Running then begin
        state := `Cancelled;
        cancel ()
      end);
  fun () -> !state

(* The §3.2 example, structurally verbatim: defensive cleanup on normal
   end of input, and on any other exception — including Cancelled, which
   is how a timed-out copy releases its channels. close_* are
   idempotent. *)
let copy ic oc =
  let rec loop () =
    output_string oc (input_line ic ^ "\n");
    loop ()
  in
  try loop () with
  | End_of_file ->
      Chan.close_in ic;
      Chan.close_out oc
  | e ->
      Chan.close_in ic;
      Chan.close_out oc;
      raise e
