(* The retrofit command-line tool.

   retrofit interp -e "match perform E 0 with v -> v | effect (E x) k ->
     continue k 42 end"        evaluate a program in the formal semantics
   retrofit interp --example meander --trace
   retrofit examples           list the built-in semantics examples
   retrofit bench table1       regenerate one of the paper's tables/figures
   retrofit bench --all --quick
   retrofit backtrace          the Fig 1d meander backtrace
   retrofit lint               static effect-safety lints over the built-ins
   retrofit websim --rate 20000
   retrofit websim --trace out.json --metrics out.prom --profile out.folded
   retrofit causal --rate 5000 --faults 0.5 --trace flows.json
   retrofit validate-trace out.json
*)

module S = Retrofit_semantics
module E = Retrofit_experiments
module Trace = Retrofit_trace.Trace
module Export = Retrofit_trace.Export
module Metrics = Retrofit_metrics.Metrics

open Cmdliner

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* ------------------------------------------------------------------ *)
(* interp *)

let run_interp source example trace fuel =
  let source =
    match (source, example) with
    | Some s, None -> Ok s
    | None, Some name -> (
        match S.Examples.find name with
        | Some ex -> Ok ex.S.Examples.source
        | None ->
            Error
              (Printf.sprintf "unknown example %S; try `retrofit examples`" name))
    | None, None -> Error "provide a program with -e or --example"
    | Some _, Some _ -> Error "-e and --example are mutually exclusive"
  in
  match source with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok source -> (
      match S.Parser.parse source with
      | Error msg ->
          Printf.eprintf "syntax error: %s\n" msg;
          1
      | Ok ast ->
          let tracer =
            if trace then
              Some (fun cfg -> Format.printf "%a@." S.Syntax.pp_config cfg)
            else None
          in
          let result = S.Machine.run ~fuel ?trace:tracer ast in
          print_endline (S.Machine.result_to_string result);
          (match result with S.Machine.Value _ -> 0 | _ -> 1))

let interp_cmd =
  let source =
    Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~doc:"Program text.")
  in
  let example =
    Arg.(
      value
      & opt (some string) None
      & info [ "example" ] ~doc:"Run a named built-in example.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print every machine configuration.")
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"Maximum reduction steps.")
  in
  Cmd.v
    (Cmd.info "interp" ~doc:"Evaluate a program in the executable semantics of §4")
    Term.(const run_interp $ source $ example $ trace $ fuel)

let examples_cmd =
  let run () =
    List.iter
      (fun (ex : S.Examples.t) ->
        Printf.printf "%-24s %s\n" ex.name ex.description)
      S.Examples.all;
    0
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"List the built-in semantics examples")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* bench *)

let run_bench ids all quick =
  let targets =
    if all then List.map (fun (e : E.Registry.t) -> e.id) E.Registry.all else ids
  in
  if targets = [] then begin
    List.iter
      (fun (e : E.Registry.t) ->
        Printf.printf "%-11s %s (%s)\n" e.id e.title e.paper_ref)
      E.Registry.all;
    0
  end
  else begin
    let missing =
      List.filter (fun id -> E.Registry.find id = None) targets
    in
    match missing with
    | _ :: _ ->
        Printf.eprintf "unknown experiments: %s\n" (String.concat ", " missing);
        1
    | [] ->
        List.iter
          (fun id ->
            let e = Option.get (E.Registry.find id) in
            Printf.printf "=== %s: %s (%s) ===\n\n%s\n" e.id e.title e.paper_ref
              (e.run ~quick ()))
          targets;
        0
  end

let bench_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes (for smoke runs).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Regenerate the paper's tables and figures (no arguments: list them)")
    Term.(const run_bench $ ids $ all $ quick)

(* ------------------------------------------------------------------ *)
(* backtrace and websim *)

let backtrace_cmd =
  let run quick =
    print_string (E.Exp_backtrace.report ~quick ());
    0
  in
  let quick = Arg.(value & flag & info [ "quick" ]) in
  Cmd.v
    (Cmd.info "backtrace"
       ~doc:"Print the Fig 1d meander backtrace and the DWARF validation table")
    Term.(const run $ quick)

let websim_cmd =
  let module HS = Retrofit_httpsim in
  let run rate duration seed faults chaos drain trace_out metrics_out
      profile_out =
    let workload () =
      match chaos with
      | Some cseed ->
          (* Supervised trio under the seeded chaos scheduler: accept
             loops in a supervision tree, per-connection nurseries, a
             watchdog, and optionally a graceful drain.  Deterministic
             in the seed — see DESIGN.md §12. *)
          let base = HS.Supervised.default_config ~seed:cseed in
          let cfg =
            {
              base with
              HS.Supervised.chaos =
                Some (Retrofit_core.Sched.Chaos.default ~seed:cseed);
              wedge_rate = 0.05;
              max_restarts = 1000;
              drain_after_ns = drain;
            }
          in
          List.iter
            (fun s -> print_endline (HS.Supervised.summary_to_string s))
            (HS.Supervised.run_servers cfg)
      | None ->
      if faults <= 0.0 then begin
      let outcomes = HS.Experiment.fig6b ~rate_rps:rate ~duration_ms:duration () in
      List.iter
        (fun (o : HS.Loadgen.outcome) ->
          Printf.printf
            "%-4s offered=%d achieved=%.0f p50=%.2fms p99=%.2fms p99.9=%.2fms \
             gc=%d errors=%d\n"
            o.model_name o.offered_rps o.achieved_rps
            (float_of_int o.p50_ns /. 1e6)
            (float_of_int o.p99_ns /. 1e6)
            (float_of_int o.p999_ns /. 1e6)
            o.gc_pauses o.errors)
        outcomes
    end
    else begin
      let fault_rates = HS.Faults.scale faults HS.Faults.default in
      List.iter
        (fun (model, process) ->
          let o =
            HS.Loadgen.run ~seed ~faults:fault_rates ~model ~process ~rate_rps:rate
              ~duration_ms:duration ()
          in
          Printf.printf
            "%-4s offered=%d goodput=%.0f p99=%.2fms total=%d ok=%d timeout=%d \
             malformed=%d shed=%d 500s=%d retries=%d faults=%d/%d/%d/%d/%d/%d\n"
            o.HS.Loadgen.model_name o.HS.Loadgen.offered_rps o.HS.Loadgen.goodput_rps
            (float_of_int o.HS.Loadgen.p99_ns /. 1e6)
            o.HS.Loadgen.total_requests o.HS.Loadgen.completed o.HS.Loadgen.timeouts
            o.HS.Loadgen.malformed o.HS.Loadgen.shed o.HS.Loadgen.server_errors
            o.HS.Loadgen.retries o.HS.Loadgen.faults.HS.Loadgen.injected
            o.HS.Loadgen.faults.HS.Loadgen.to_malformed
            o.HS.Loadgen.faults.HS.Loadgen.to_retried
            o.HS.Loadgen.faults.HS.Loadgen.to_timeout
            o.HS.Loadgen.faults.HS.Loadgen.to_server_error
            o.HS.Loadgen.faults.HS.Loadgen.to_absorbed)
        HS.Experiment.servers
    end
    in
    match (trace_out, metrics_out, profile_out) with
    | None, None, None ->
        workload ();
        0
    | _ ->
        (* Observability run: the same seeded workload inside a trace +
           metrics session, plus the profiled fiber-machine and
           scheduler workloads so the snapshot covers every subsystem.
           Everything is keyed on the seed — two runs with the same
           arguments produce byte-identical artifacts. *)
        let prof, ring =
          Trace.scoped (fun () ->
              Metrics.scoped (fun _ ->
                  workload ();
                  ignore (E.Exp_observe.sched_workload ());
                  let prof = E.Exp_observe.profiled_run () in
                  (* blocked-time leaf frames (<wait:io> / <wait:runq>)
                     derived from the eventlog captured above; published
                     as a delta because profiled_run already pushed its
                     totals *)
                  ignore (E.Exp_observe.fold_waits prof (Trace.events ()));
                  if Metrics.on () then
                    Metrics.inc
                      ~by:(Retrofit_dwarf.Profile.wait_samples prof)
                      "profile_wait_samples_total";
                  prof))
        in
        (match trace_out with
        | Some path -> write_file path (Export.of_trace_chrome ring)
        | None -> ());
        (match metrics_out with
        | Some path -> write_file path (Metrics.to_prometheus ())
        | None -> ());
        (match profile_out with
        | Some path -> write_file path (Retrofit_dwarf.Profile.folded prof)
        | None -> ());
        0
  in
  let rate =
    Arg.(value & opt int 20_000 & info [ "rate" ] ~doc:"Offered load (req/s).")
  in
  let duration =
    Arg.(value & opt int 2_000 & info [ "duration" ] ~doc:"Duration (ms).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Trace/fault seed.") in
  let faults =
    Arg.(
      value & opt float 0.0
      & info [ "faults" ]
          ~doc:
            "Fault intensity (multiplier over the default fault plan); 0 \
             disables injection and runs the plain engine.")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Run the supervised simulation under the seeded chaos scheduler \
             (fiber kills, delayed resumes, spurious wakeups) instead of the \
             load generator.  Deterministic: the same seed reproduces the \
             run byte-for-byte.")
  in
  let drain =
    Arg.(
      value
      & opt (some int) None
      & info [ "drain" ] ~docv:"NS"
          ~doc:
            "With --chaos: begin a graceful drain at this virtual time (ns).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:"Write a Chrome trace_event eventlog of the run.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"OUT.prom"
          ~doc:"Write a Prometheus text-format metrics snapshot.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"OUT.folded"
          ~doc:
            "Write folded flamegraph stacks from the DWARF sampling profiler \
             (run on the seeded fiber-machine workload).")
  in
  Cmd.v
    (Cmd.info "websim" ~doc:"Run the web-server simulation at one load point")
    Term.(
      const run $ rate $ duration $ seed $ faults $ chaos $ drain $ trace_out
      $ metrics_out $ profile_out)

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_cmd =
  let module F = Retrofit_fiber in
  let module A = Retrofit_analysis in
  (* The built-ins' C stubs, modelled precisely: the identity and the
     pending-list snapshot never re-enter OCaml; the two callback stubs
     re-enter through exactly one known function. *)
  let cfun_model = function
    | "c_id" | "list_pending" -> A.Cfg.Pure
    | "c_cb" -> A.Cfg.Calls_back "ocaml_id"
    | "ocaml_to_c" -> A.Cfg.Calls_back "c_to_ocaml"
    | _ -> A.Cfg.Opaque
  in
  (* Small fixed sizes: the lints are size-independent, and the golden
     file must be stable. *)
  let targets =
    [
      ("fib", F.Programs.fib ~n:5);
      ("exnraise", F.Programs.exnraise ~iters:3);
      ("extcall", F.Programs.extcall ~iters:3);
      ("callback", F.Programs.callback ~iters:3);
      ("meander", F.Programs.meander);
      ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:3);
      ("effect_depth", F.Programs.effect_depth ~depth:3 ~iters:2);
      ("counter_effect", F.Programs.counter_effect ~upto:4);
      ("one_shot_violation", F.Programs.one_shot_violation);
      ("unhandled_effect", F.Programs.unhandled_effect);
      ("discontinue_cleanup", F.Programs.discontinue_cleanup);
      ("effect_in_callback", F.Programs.effect_in_callback);
      ("cross_resume", F.Programs.cross_resume);
      ("multishot_choice", F.Programs.multishot_choice);
      ("suspended_requests", F.Programs.suspended_requests ~n:3);
    ]
  in
  let run red_zone multishot handlers cost_bounds quiet name =
    let targets =
      match name with
      | None -> targets
      | Some n -> List.filter (fun (tn, _) -> tn = n) targets
    in
    if targets = [] then begin
      prerr_endline "unknown program; omit the argument to list all";
      1
    end
    else begin
      let findings = ref 0 and musts = ref 0 in
      List.iter
        (fun (name, p) ->
          let r = A.Analyze.analyze ~cfun_model ~multishot p in
          let rz = A.Redzone.audit ~red_zone r.A.Analyze.compiled in
          let extra =
            (if handlers then A.Resolve.diagnostics r.A.Analyze.resolve else [])
            @
            if cost_bounds then A.Costbound.diagnostics r.A.Analyze.cost else []
          in
          let report =
            {
              r.A.Analyze.report with
              A.Diag.diags =
                A.Diag.dedup (rz @ extra @ r.A.Analyze.report.A.Diag.diags);
            }
          in
          let is_must v = v = A.Diag.Must in
          musts :=
            !musts
            + List.length
                (List.filter (fun d -> is_must d.A.Diag.verdict) report.A.Diag.diags)
            + (if is_must report.A.Diag.unhandled then 1 else 0)
            + if is_must report.A.Diag.one_shot then 1 else 0;
          findings := !findings + List.length report.A.Diag.diags;
          if not quiet then begin
            let loc = A.Diag.locator ~file:name p in
            Printf.printf "== %s ==\n%s" name (A.Diag.report_to_string ~loc report);
            if handlers then
              Printf.printf "%s" (A.Resolve.report r.A.Analyze.resolve);
            if cost_bounds then
              Printf.printf "%s"
                (A.Costbound.report ~multishot ~red_zone r.A.Analyze.cost);
            print_newline ()
          end)
        targets;
      Printf.printf "%d findings (%d must) across %d programs\n" !findings
        !musts (List.length targets);
      if !musts > 0 then 1 else 0
    end
  in
  let red_zone =
    Arg.(
      value & opt int 16
      & info [ "red-zone" ]
          ~doc:"Red-zone size (words) for the frame-usage audit (§5.2).")
  in
  let multishot =
    Arg.(
      value & flag
      & info [ "multishot" ]
          ~doc:
            "Lint for a multishot runtime: continuation cloning makes a \
             second resume legal, so may-resume-twice findings are \
             verified-safe and resume sites stop counting as one-shot \
             violation sources.")
  in
  let handlers =
    Arg.(
      value & flag
      & info [ "handlers" ]
          ~doc:
            "Print the interprocedural handler-resolution table: per perform \
             site, the candidate handler clauses, the \
             monomorphic/polymorphic/megamorphic classification, and the \
             inline-cache candidate census.")
  in
  let cost_bounds =
    Arg.(
      value & flag
      & info [ "cost-bounds" ]
          ~doc:
            "Print the static cost-bound table: whole-program and \
             per-function bounds on performs, handler installations, resumes \
             and calls, plus per-stack-policy bounds on the machine's cost \
             counters (switches, grows, checks, probes, captures).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ]
          ~doc:"Print only the one-line findings summary.")
  in
  let prog =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Lint a single built-in program.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static effect-safety lints: handled-effect dataflow, continuation \
          linearity, C-frame barriers, handler resolution, cost bounds and \
          the red-zone audit over the built-in fiber programs.  Exits \
          nonzero when any finding or program verdict is must."
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when no diagnostic carries a must verdict; 1 when at least \
              one finding or program-level verdict is must (a defect the \
              analyzer proved, not merely failed to rule out).";
         ])
    Term.(
      const run $ red_zone $ multishot $ handlers $ cost_bounds $ quiet $ prog)

(* ------------------------------------------------------------------ *)
(* causal *)

let causal_cmd =
  let module HS = Retrofit_httpsim in
  let module Causal = Retrofit_causal in
  let run rate duration seed faults queue_cap top model capacity trace_out =
    match
      List.find_opt
        (fun ((m : Retrofit_httpsim.Server.model), _) -> m.HS.Server.name = model)
        HS.Experiment.servers
    with
    | None ->
        Printf.eprintf "unknown model %S; one of: %s\n" model
          (String.concat ", "
             (List.map
                (fun ((m : HS.Server.model), _) -> m.HS.Server.name)
                HS.Experiment.servers));
        1
    | Some (m, process) ->
        let fault_rates = HS.Faults.scale faults HS.Faults.default in
        let resilience = { HS.Loadgen.default_resilience with queue_cap } in
        let _outcome, ring =
          Trace.scoped ~capacity (fun () ->
              HS.Loadgen.run ~seed ~faults:fault_rates ~resilience ~model:m
                ~process ~rate_rps:rate ~duration_ms:duration ())
        in
        let g = Causal.Reconstruct.of_trace ring in
        print_string (Causal.Report.render ~top g);
        (match trace_out with
        | Some path ->
            let events = Causal.Reconstruct.with_flows (Trace.to_list ring) g in
            write_file path
              (Export.to_chrome ~dropped:(Trace.dropped ring) events)
        | None -> ());
        0
  in
  let rate =
    Arg.(value & opt int 20_000 & info [ "rate" ] ~doc:"Offered load (req/s).")
  in
  let duration =
    Arg.(value & opt int 300 & info [ "duration" ] ~doc:"Duration (ms).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let faults =
    Arg.(
      value & opt float 0.5
      & info [ "faults" ]
          ~doc:"Fault intensity (multiplier over the default fault plan).")
  in
  let queue_cap =
    Arg.(
      value & opt int 512
      & info [ "queue-cap" ] ~doc:"Admission-control queue cap.")
  in
  let top =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~doc:"Rows in the critical-path edge table.")
  in
  let model =
    Arg.(
      value & opt string "mc"
      & info [ "model" ] ~doc:"Server model (mc, lwt, go).")
  in
  let capacity =
    Arg.(
      value
      & opt int (1 lsl 18)
      & info [ "ring-capacity" ]
          ~doc:
            "Eventlog ring capacity; undersize it to watch wraparound turn \
             requests into incomplete_spans instead of mis-attributions.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:
            "Write the eventlog as a Chrome trace with per-request flow \
             events (s/t/f) — Perfetto draws the causal arrows.")
  in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Reconstruct the span graph of a seeded websim run: per-request \
          latency attribution, critical-path edges, p99 tail exemplars")
    Term.(
      const run $ rate $ duration $ seed $ faults $ queue_cap $ top $ model
      $ capacity $ trace_out)

let validate_trace_cmd =
  let run file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Export.validate_chrome s with
    | Ok n ->
        Printf.printf "ok: %d events\n" n;
        0
    | Error e ->
        Printf.eprintf "invalid trace: %s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json") in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Check a Chrome trace_event JSON file against the eventlog schema")
    Term.(const run $ file)

let main_cmd =
  Cmd.group
    (Cmd.info "retrofit" ~version:"1.0"
       ~doc:
         "Reproduction of 'Retrofitting Effect Handlers onto OCaml' (PLDI 2021)")
    [
      interp_cmd; examples_cmd; bench_cmd; backtrace_cmd; lint_cmd; websim_cmd;
      causal_cmd; validate_trace_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
