module H = Retrofit_httpsim

let test name f = Alcotest.test_case name `Quick f

(* ---------------- Http ---------------- *)

let simple_get = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"

let parse_get () =
  match H.Http.parse_request simple_get with
  | Ok (req, consumed) ->
      Alcotest.(check string) "method" "GET" (H.Http.meth_to_string req.H.Http.meth);
      Alcotest.(check string) "target" "/index.html" req.target;
      Alcotest.(check string) "version" "HTTP/1.1" req.version;
      Alcotest.(check (option string)) "host" (Some "x") (H.Http.header req "Host");
      Alcotest.(check int) "consumed" (String.length simple_get) consumed
  | Error e -> Alcotest.fail e

let parse_post_body () =
  let raw = "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" in
  match H.Http.parse_request raw with
  | Ok (req, consumed) ->
      Alcotest.(check string) "body" "hello" req.H.Http.body;
      Alcotest.(check int) "consumed" (String.length raw) consumed
  | Error e -> Alcotest.fail e

let parse_pipelined () =
  let raw = simple_get ^ "GET /two HTTP/1.1\r\n\r\n" in
  match H.Http.parse_request raw with
  | Ok (_, consumed) -> (
      match H.Http.parse_request (String.sub raw consumed (String.length raw - consumed)) with
      | Ok (req2, _) -> Alcotest.(check string) "second" "/two" req2.H.Http.target
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let parse_incomplete () =
  let incomplete s =
    match H.Http.parse_request s with
    | Error e ->
        Alcotest.(check bool) "mentions incomplete" true
          (String.length e >= 10 && String.sub e 0 10 = "incomplete")
    | Ok _ -> Alcotest.fail ("parsed " ^ s)
  in
  incomplete "GET / HTTP/1.1";
  incomplete "GET / HTTP/1.1\r\nHost: x\r\n";
  incomplete "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"

let parse_malformed () =
  let bad s =
    match H.Http.parse_request s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "no version" true (bad "GET /\r\n\r\n");
  Alcotest.(check bool) "bad version" true (bad "GET / HTTP/3.0\r\n\r\n");
  Alcotest.(check bool) "bad header" true (bad "GET / HTTP/1.1\r\nnocolon\r\n\r\n");
  Alcotest.(check bool) "bad content length" true
    (bad "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")

let keep_alive_rules () =
  let req ?(version = "HTTP/1.1") ?(headers = []) () =
    { H.Http.meth = H.Http.GET; target = "/"; version; headers; body = "" }
  in
  Alcotest.(check bool) "1.1 default" true (H.Http.keep_alive (req ()));
  Alcotest.(check bool) "1.1 close" false
    (H.Http.keep_alive (req ~headers:[ ("connection", "close") ] ()));
  Alcotest.(check bool) "1.0 default" false (H.Http.keep_alive (req ~version:"HTTP/1.0" ()));
  Alcotest.(check bool) "1.0 keep-alive" true
    (H.Http.keep_alive (req ~version:"HTTP/1.0" ~headers:[ ("connection", "keep-alive") ] ()))

let response_roundtrip () =
  let resp = H.Http.ok "hello world" in
  let raw = H.Http.format_response resp in
  match H.Http.parse_response raw with
  | Ok (parsed, consumed) ->
      Alcotest.(check int) "status" 200 parsed.H.Http.status;
      Alcotest.(check string) "body" "hello world" parsed.resp_body;
      Alcotest.(check int) "consumed" (String.length raw) consumed
  | Error e -> Alcotest.fail e

let request_roundtrip () =
  let raw = H.Netsim.request_for ~target:"/page" ~conn_id:3 in
  match H.Http.parse_request raw with
  | Ok (req, _) ->
      Alcotest.(check string) "target" "/page" req.H.Http.target;
      Alcotest.(check (option string)) "conn header" (Some "3")
        (H.Http.header req "x-conn")
  | Error e -> Alcotest.fail e

let reason_phrases () =
  Alcotest.(check string) "200" "OK" (H.Http.reason_phrase 200);
  Alcotest.(check string) "404" "Not Found" (H.Http.reason_phrase 404);
  Alcotest.(check string) "unknown" "Status 599" (H.Http.reason_phrase 599)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"format/parse request roundtrip" ~count:100
    QCheck.(
      pair
        (string_gen_of_size (QCheck.Gen.int_range 1 20) QCheck.Gen.(char_range 'a' 'z'))
        (string_gen_of_size (QCheck.Gen.int_range 0 30) QCheck.Gen.(char_range 'a' 'z')))
    (fun (target, body) ->
      let req =
        {
          H.Http.meth = H.Http.POST;
          target = "/" ^ target;
          version = "HTTP/1.1";
          headers = [ ("host", "h") ];
          body;
        }
      in
      match H.Http.parse_request (H.Http.format_request req) with
      | Ok (parsed, _) ->
          parsed.H.Http.target = req.H.Http.target && parsed.body = body
      | Error _ -> false)

(* ---------------- Netsim ---------------- *)

let netsim_constant_rate () =
  let rng = Retrofit_util.Rng.create 1 in
  let events =
    H.Netsim.constant_rate ~rng ~connections:4 ~rate_rps:1000 ~duration_ms:100
      ~target:"/" ()
  in
  Alcotest.(check int) "count" 100 (List.length events);
  let sorted =
    List.for_all2
      (fun (a : H.Netsim.event) b -> a.arrival_ns <= b.H.Netsim.arrival_ns)
      (List.filteri (fun i _ -> i < 99) events)
      (List.tl events)
  in
  Alcotest.(check bool) "sorted" true sorted;
  let conns = List.map (fun (e : H.Netsim.event) -> e.conn_id) events in
  Alcotest.(check bool) "round robin" true
    (List.filteri (fun i _ -> i < 4) conns = [ 0; 1; 2; 3 ])

(* Regression: jitter larger than the nominal interval used to emit a
   non-monotonic trace (event i+1 before event i), breaking Loadgen's
   FIFO-by-arrival queueing model. *)
let netsim_jitter_monotonic () =
  let rng = Retrofit_util.Rng.create 5 in
  let interval_ns = 1_000_000_000 / 1000 in
  let events =
    H.Netsim.constant_rate ~jitter_ns:(5 * interval_ns) ~rng ~connections:4
      ~rate_rps:1000 ~duration_ms:100 ~target:"/" ()
  in
  Alcotest.(check int) "count unchanged by sorting" 100 (List.length events);
  let rec check_sorted = function
    | (a : H.Netsim.event) :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "monotonic %d <= %d" a.arrival_ns b.H.Netsim.arrival_ns)
          true
          (a.arrival_ns <= b.H.Netsim.arrival_ns);
        check_sorted rest
    | _ -> ()
  in
  check_sorted events

let netsim_poisson () =
  let rng = Retrofit_util.Rng.create 2 in
  let events =
    H.Netsim.poisson_rate ~rng ~connections:10 ~rate_rps:10_000 ~duration_ms:200
      ~target:"/" ()
  in
  let n = List.length events in
  (* expect about 2000 arrivals; allow generous slack *)
  Alcotest.(check bool) (Printf.sprintf "n=%d near 2000" n) true (n > 1600 && n < 2400);
  List.iter
    (fun (e : H.Netsim.event) ->
      Alcotest.(check bool) "in horizon" true
        (e.arrival_ns >= 0 && e.arrival_ns < 200_000_000))
    events

(* ---------------- Servers ---------------- *)

let servers_serve () =
  let raw = H.Netsim.request_for ~target:"/" ~conn_id:0 in
  List.iter
    (fun (model, process) ->
      match H.Http.parse_response (process raw) with
      | Ok (resp, _) ->
          Alcotest.(check int) (model.H.Server.name ^ " 200") 200 resp.H.Http.status;
          Alcotest.(check string)
            (model.H.Server.name ^ " body")
            H.Server.static_page resp.resp_body
      | Error e -> Alcotest.fail e)
    H.Experiment.servers

let servers_404_405 () =
  let process = H.Server_effects.process_raw in
  let raw = H.Netsim.request_for ~target:"/missing" ~conn_id:0 in
  (match H.Http.parse_response (process raw) with
  | Ok (resp, _) -> Alcotest.(check int) "404" 404 resp.H.Http.status
  | Error e -> Alcotest.fail e);
  let post = "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n" in
  (match H.Http.parse_response (process post) with
  | Ok (resp, _) -> Alcotest.(check int) "405" 405 resp.H.Http.status
  | Error e -> Alcotest.fail e);
  match H.Http.parse_response (process "garbage\r\n\r\n") with
  | Ok (resp, _) -> Alcotest.(check int) "400" 400 resp.H.Http.status
  | Error e -> Alcotest.fail e

(* ---------------- Loadgen / Experiment ---------------- *)

let loadgen_sane () =
  let o =
    H.Loadgen.run ~model:H.Server.mc ~process:H.Server_effects.process_raw
      ~rate_rps:10_000 ~duration_ms:200 ()
  in
  Alcotest.(check int) "no errors" 0 o.H.Loadgen.errors;
  Alcotest.(check bool) "completed" true (o.completed > 1_000);
  Alcotest.(check bool) "p50 <= p99" true (o.p50_ns <= o.p99_ns);
  Alcotest.(check bool) "p99 <= p99.9" true (o.p99_ns <= o.p999_ns);
  Alcotest.(check bool) "achieved near offered" true
    (o.achieved_rps > 9_000. && o.achieved_rps < 11_000.)

let loadgen_deterministic () =
  let run () =
    H.Loadgen.run ~model:H.Server.mc ~process:H.Server_effects.process_raw
      ~rate_rps:5_000 ~duration_ms:100 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "p99 deterministic" a.H.Loadgen.p99_ns b.H.Loadgen.p99_ns;
  Alcotest.(check int) "completed" a.completed b.completed

let throughput_saturates () =
  List.iter
    (fun (model, process) ->
      let low =
        H.Loadgen.run ~model ~process ~rate_rps:10_000 ~duration_ms:300 ()
      in
      let over =
        H.Loadgen.run ~model ~process ~rate_rps:60_000 ~duration_ms:300 ()
      in
      Alcotest.(check bool)
        (model.H.Server.name ^ " keeps up at 10k")
        true
        (low.H.Loadgen.achieved_rps > 9_500.);
      Alcotest.(check bool)
        (model.H.Server.name ^ " saturates under 40k")
        true
        (over.H.Loadgen.achieved_rps < 40_000.))
    H.Experiment.servers

let mc_best_tail () =
  let outcomes = H.Experiment.fig6b ~rate_rps:20_000 ~duration_ms:1_000 () in
  let find name =
    List.find (fun (o : H.Loadgen.outcome) -> o.model_name = name) outcomes
  in
  let mc = find "mc" and lwt = find "lwt" in
  Alcotest.(check bool) "mc p99.9 <= lwt p99.9" true
    (mc.H.Loadgen.p999_ns <= lwt.H.Loadgen.p999_ns)

(* Regression: format_request used a case-sensitive lookup, so a caller
   header spelled "Content-Length" got a second, synthesised
   "content-length" — a duplicate on the wire. *)
let format_request_content_length_once () =
  let req =
    {
      H.Http.meth = H.Http.POST;
      target = "/";
      version = "HTTP/1.1";
      headers = [ ("Content-Length", "5") ];
      body = "hello";
    }
  in
  let raw = H.Http.format_request req in
  let count =
    String.split_on_char '\n' raw
    |> List.filter (fun line ->
           let line = String.lowercase_ascii line in
           String.length line >= 15 && String.sub line 0 15 = "content-length:")
    |> List.length
  in
  Alcotest.(check int) "exactly one content-length header" 1 count;
  match H.Http.parse_request raw with
  | Ok (parsed, _) -> Alcotest.(check string) "body intact" "hello" parsed.H.Http.body
  | Error e -> Alcotest.fail e

(* ---------------- Netsim determinism ---------------- *)

let netsim_poisson_properties () =
  let trace seed =
    let rng = Retrofit_util.Rng.create seed in
    H.Netsim.poisson_rate ~rng ~connections:7 ~rate_rps:5_000 ~duration_ms:100
      ~target:"/" ()
  in
  let a = trace 11 and a' = trace 11 and b = trace 12 in
  Alcotest.(check bool) "equal seeds give identical traces" true (a = a');
  Alcotest.(check bool) "different seeds give different traces" true (a <> b);
  let rec non_decreasing = function
    | (x : H.Netsim.event) :: (y :: _ as rest) ->
        x.arrival_ns <= y.H.Netsim.arrival_ns && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true (non_decreasing a);
  List.iter
    (fun (e : H.Netsim.event) ->
      Alcotest.(check bool) "conn_id in range" true (e.conn_id >= 0 && e.conn_id < 7))
    a

(* ---------------- Fault-shaped inputs never crash the parser -------- *)

let parse_truncation_total () =
  let full_req = "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello" in
  for keep = 0 to String.length full_req - 1 do
    match H.Http.parse_request (String.sub full_req 0 keep) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "prefix %d parsed as a full request" keep)
    | exception e ->
        Alcotest.fail (Printf.sprintf "prefix %d raised %s" keep (Printexc.to_string e))
  done;
  let full_resp = H.Http.format_response (H.Http.ok "hello world") in
  for keep = 0 to String.length full_resp - 1 do
    match H.Http.parse_response (String.sub full_resp 0 keep) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "prefix %d parsed as a full response" keep)
    | exception e ->
        Alcotest.fail (Printf.sprintf "prefix %d raised %s" keep (Printexc.to_string e))
  done

let parse_garbage_headers () =
  let err s =
    match H.Http.parse_request s with
    | Error _ -> true
    | Ok _ -> false
    | exception _ -> false
  in
  Alcotest.(check bool) "header without colon" true
    (err "GET / HTTP/1.1\r\nno colon here\r\n\r\n");
  Alcotest.(check bool) "negative content-length" true
    (err "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\nhello");
  Alcotest.(check bool) "garbage content-length" true
    (err "POST / HTTP/1.1\r\nContent-Length: 5x\r\n\r\nhello");
  Alcotest.(check bool) "empty header name" true (err "GET / HTTP/1.1\r\n: v\r\n\r\n");
  Alcotest.(check bool) "response negative content-length" true
    (match H.Http.parse_response "HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n" with
    | Error _ -> true
    | Ok _ | (exception _) -> false)

(* ---------------- Faults ---------------- *)

let faults_plan_deterministic () =
  let rng = Retrofit_util.Rng.create 3 in
  let events =
    H.Netsim.poisson_rate ~rng ~connections:10 ~rate_rps:20_000 ~duration_ms:100
      ~target:"/" ()
  in
  let p1 = H.Faults.plan ~seed:7 ~rates:H.Faults.default events in
  let p2 = H.Faults.plan ~seed:7 ~rates:H.Faults.default events in
  let p3 = H.Faults.plan ~seed:8 ~rates:H.Faults.default events in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "different seed, different plan" true (p1 <> p3);
  Alcotest.(check int) "length preserved" (List.length events) (List.length p1);
  Alcotest.(check bool) "default plan injects something" true
    (H.Faults.injected_count p1 > 0);
  let clean = H.Faults.plan ~seed:7 ~rates:H.Faults.none events in
  Alcotest.(check int) "zero rates inject nothing" 0 (H.Faults.injected_count clean);
  Alcotest.check_raises "negative scale rejected"
    (Invalid_argument "Faults.scale: negative factor") (fun () ->
      ignore (H.Faults.scale (-1.0) H.Faults.default))

let faults_damage_is_rejected_not_fatal () =
  let raw = H.Netsim.request_for ~target:"/" ~conn_id:0 in
  List.iter
    (fun (model, process) ->
      let check fault expect_status =
        let reply = process (H.Faults.damaged_raw raw fault) in
        match H.Http.parse_response reply with
        | Ok (resp, _) ->
            Alcotest.(check int)
              (Printf.sprintf "%s %s" model.H.Server.name
                 (H.Faults.fault_label fault))
              expect_status resp.H.Http.status
        | Error e -> Alcotest.fail e
      in
      (* Wire damage: 4xx.  Crash tag: the handler raises mid-request
         and the crash barrier converts it to a 500 — never an escape. *)
      check (H.Faults.Truncate 5) 400;
      check H.Faults.Backend_fail 500;
      (* A corrupted byte anywhere in the first 16 positions of the
         request line yields some non-200 rejection — never a crash. *)
      for i = 0 to min 15 (String.length raw - 1) do
        let reply = process (H.Faults.damaged_raw raw (H.Faults.Corrupt i)) in
        match H.Http.parse_response reply with
        | Ok (resp, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s corrupt@%d non-200 (got %d)" model.H.Server.name
                 i resp.H.Http.status)
              true (resp.H.Http.status <> 200)
        | Error e -> Alcotest.fail e
      done)
    H.Experiment.servers

(* ---------------- Resilient engine ---------------- *)

(* Frozen pins: the zero-fault default path is the Fig 6 machinery and
   must stay bit-for-bit across refactors (same seed, same numbers). *)
let loadgen_frozen_counters () =
  let run model process =
    H.Loadgen.run ~model ~process ~rate_rps:10_000 ~duration_ms:300 ()
  in
  let check name (o : H.Loadgen.outcome) completed gc p50 p90 p99 p999 max_ns =
    Alcotest.(check int) (name ^ " completed") completed o.completed;
    Alcotest.(check int) (name ^ " errors") 0 o.errors;
    Alcotest.(check int) (name ^ " gc") gc o.gc_pauses;
    Alcotest.(check int) (name ^ " p50") p50 o.p50_ns;
    Alcotest.(check int) (name ^ " p90") p90 o.p90_ns;
    Alcotest.(check int) (name ^ " p99") p99 o.p99_ns;
    Alcotest.(check int) (name ^ " p999") p999 o.p999_ns;
    Alcotest.(check int) (name ^ " max") max_ns o.max_ns
  in
  check "mc"
    (run H.Server.mc H.Server_effects.process_raw)
    3045 0 34784 66176 107328 164608 170056;
  check "lwt"
    (run H.Server.lwt H.Server_monad.process_raw)
    3045 1 36320 70848 121984 482304 517389;
  check "go" (run H.Server.go H.Server_go.process_raw) 3045 0 35488 67840 109696
    169472 174436;
  let over =
    H.Loadgen.run ~model:H.Server.mc ~process:H.Server_effects.process_raw
      ~rate_rps:25_000 ~duration_ms:300 ()
  in
  Alcotest.(check int) "mc 25k completed" 7558 over.completed;
  Alcotest.(check int) "mc 25k p99" 405248 over.p99_ns

(* With no faults and a lenient policy, the resilient engine must
   reproduce the plain engine exactly: same RNG draw order, same FIFO
   service order, same histogram. *)
let resilient_zero_fault_equivalence () =
  List.iter
    (fun (model, process) ->
      let plain = H.Loadgen.run ~model ~process ~rate_rps:10_000 ~duration_ms:200 () in
      let res =
        H.Loadgen.run ~faults:H.Faults.none ~resilience:H.Loadgen.lenient_resilience
          ~model ~process ~rate_rps:10_000 ~duration_ms:200 ()
      in
      let name = model.H.Server.name in
      Alcotest.(check int) (name ^ " completed") plain.H.Loadgen.completed res.H.Loadgen.completed;
      Alcotest.(check int) (name ^ " errors") plain.errors res.errors;
      Alcotest.(check int) (name ^ " gc") plain.gc_pauses res.gc_pauses;
      Alcotest.(check int) (name ^ " p50") plain.p50_ns res.p50_ns;
      Alcotest.(check int) (name ^ " p99") plain.p99_ns res.p99_ns;
      Alcotest.(check int) (name ^ " p999") plain.p999_ns res.p999_ns;
      Alcotest.(check int) (name ^ " max") plain.max_ns res.max_ns;
      Alcotest.(check (float 0.0001)) (name ^ " achieved") plain.achieved_rps res.achieved_rps)
    H.Experiment.servers

let check_taxonomy name (o : H.Loadgen.outcome) =
  Alcotest.(check int)
    (name ^ " dispositions partition the trace")
    o.total_requests
    (o.completed + o.timeouts + o.malformed);
  Alcotest.(check int) (name ^ " errors = timeouts + malformed")
    (o.timeouts + o.malformed) o.errors;
  Alcotest.(check int)
    (name ^ " every fault accounted exactly once")
    o.faults.H.Loadgen.injected
    (o.faults.H.Loadgen.to_malformed + o.faults.H.Loadgen.to_retried
   + o.faults.H.Loadgen.to_timeout + o.faults.H.Loadgen.to_server_error
   + o.faults.H.Loadgen.to_absorbed)

(* The acceptance run: default fault plan, 20k req/s, all three
   servers — no uncaught exceptions, taxonomy invariants hold, and the
   run is deterministic in the seed. *)
let resilient_default_faults () =
  List.iter
    (fun (model, process) ->
      let run () =
        H.Loadgen.run ~faults:H.Faults.default ~model ~process ~rate_rps:20_000
          ~duration_ms:300 ()
      in
      let o = run () in
      let name = model.H.Server.name in
      check_taxonomy name o;
      Alcotest.(check bool) (name ^ " injected some faults") true
        (o.faults.H.Loadgen.injected > 0);
      Alcotest.(check bool) (name ^ " most requests still complete") true
        (float_of_int o.completed > 0.9 *. float_of_int o.total_requests);
      Alcotest.(check bool) (name ^ " crash barrier produced 500s") true
        (o.server_errors > 0);
      Alcotest.(check bool) (name ^ " drops were retried") true (o.retries > 0);
      let o' = run () in
      Alcotest.(check bool) (name ^ " deterministic in seed") true (o = o'))
    H.Experiment.servers

let resilient_sheds_under_tiny_cap () =
  let o =
    H.Loadgen.run ~faults:H.Faults.none
      ~resilience:{ H.Loadgen.default_resilience with queue_cap = 2 }
      ~model:H.Server.mc ~process:H.Server_effects.process_raw ~rate_rps:40_000
      ~duration_ms:200 ()
  in
  Alcotest.(check bool) "sheds under overload" true (o.H.Loadgen.shed > 0);
  check_taxonomy "mc tiny cap" o

(* Goodput degrades gracefully as fault intensity rises: it shrinks,
   but never collapses (the resilience layer keeps most requests
   completing even at twice the default fault rates). *)
let degradation_graceful () =
  let goodput intensity =
    let o =
      H.Loadgen.run
        ~faults:(H.Faults.scale intensity H.Faults.default)
        ~model:H.Server.mc ~process:H.Server_effects.process_raw ~rate_rps:20_000
        ~duration_ms:300 ()
    in
    check_taxonomy (Printf.sprintf "mc @%.1fx" intensity) o;
    float_of_int o.completed /. float_of_int o.total_requests
  in
  let g0 = goodput 0.0 and g1 = goodput 1.0 and g2 = goodput 2.0 in
  Alcotest.(check bool) "zero faults complete everything" true (g0 = 1.0);
  Alcotest.(check bool) (Printf.sprintf "monotone %.4f >= %.4f" g1 g2) true (g1 >= g2);
  Alcotest.(check bool) (Printf.sprintf "no collapse (%.4f)" g2) true (g2 > 0.9)

(* ---------------- crash barriers: cancelled <> crashed ---------------- *)

(* ISSUE 7 regression: each server's crash barrier must turn handler
   exceptions into a 500 but re-raise Cancelled/Killed unwinds — an
   asynchronously terminated request is not a server error. *)
let barriers_distinguish_cancelled () =
  let module Sched = Retrofit_core.Sched in
  let raw = H.Netsim.request_for ~target:"/" ~conn_id:0 in
  let withs : (string * (?pre:(unit -> unit) -> string -> string)) list =
    [
      ("mc", H.Server_effects.process_raw_with);
      ("go", H.Server_go.process_raw_with);
      ("lwt", H.Server_monad.process_raw_with);
    ]
  in
  List.iter
    (fun (name, (process : ?pre:(unit -> unit) -> string -> string)) ->
      (* a crashing handler is still a 500 *)
      (match
         H.Http.parse_response (process ~pre:(fun () -> failwith "boom") raw)
       with
      | Ok (resp, _) ->
          Alcotest.(check int) (name ^ " crash is 500") 500 resp.H.Http.status
      | Error e -> Alcotest.fail e);
      (* cancellation and kills pass through *)
      Alcotest.check_raises (name ^ " cancel re-raised") Sched.Cancelled
        (fun () ->
          ignore (process ~pre:(fun () -> raise Sched.Cancelled) raw));
      Alcotest.check_raises (name ^ " kill re-raised") Sched.Killed (fun () ->
          ignore (process ~pre:(fun () -> raise Sched.Killed) raw));
      (* and the plain path still serves *)
      match H.Http.parse_response (process raw) with
      | Ok (resp, _) ->
          Alcotest.(check int) (name ^ " still 200") 200 resp.H.Http.status
      | Error e -> Alcotest.fail e)
    withs

(* ---------------- supervised simulation ---------------- *)

let supervised_calm_completes () =
  let cfg =
    { (H.Supervised.default_config ~seed:5) with H.Supervised.connections = 24 }
  in
  let s = H.Supervised.run cfg in
  Alcotest.(check int) "all completed" s.H.Supervised.total
    s.H.Supervised.completed;
  Alcotest.(check int) "no restarts" 0 s.H.Supervised.restarts;
  Alcotest.(check int) "accounting conserved" s.H.Supervised.total
    (H.Supervised.accounted s);
  Alcotest.(check int) "no silent drops" 0 s.H.Supervised.silent

let supervised_chaos_deterministic () =
  let cfg =
    {
      (H.Supervised.default_config ~seed:13) with
      H.Supervised.connections = 30;
      chaos = Some (Retrofit_core.Sched.Chaos.default ~seed:13);
      wedge_rate = 0.1;
      max_restarts = 1000;
    }
  in
  let a = H.Supervised.run cfg and b = H.Supervised.run cfg in
  Alcotest.(check string) "double run byte-identical"
    (H.Supervised.summary_to_string a)
    (H.Supervised.summary_to_string b);
  Alcotest.(check int) "accounting conserved under chaos"
    a.H.Supervised.total (H.Supervised.accounted a);
  Alcotest.(check int) "no silent drops under chaos" 0 a.H.Supervised.silent

let supervised_drain_accounts_everything () =
  let cfg =
    {
      (H.Supervised.default_config ~seed:4) with
      H.Supervised.connections = 40;
      drain_after_ns = Some 300_000;
      drain_deadline_ns = 1_500_000;
    }
  in
  let s = H.Supervised.run cfg in
  Alcotest.(check bool) "drain ran" true (s.H.Supervised.drain_latency_ns >= 0);
  Alcotest.(check bool) "something was rejected mid-drain" true
    (s.H.Supervised.rejected_drain > 0);
  Alcotest.(check int) "accounting conserved" s.H.Supervised.total
    (H.Supervised.accounted s);
  Alcotest.(check int) "zero silent drops" 0 s.H.Supervised.silent;
  Alcotest.(check string) "graceful outcome" "completed" s.H.Supervised.outcome

let suite =
  [
    test "parse GET" parse_get;
    test "parse POST with body" parse_post_body;
    test "parse pipelined" parse_pipelined;
    test "incomplete requests" parse_incomplete;
    test "malformed requests" parse_malformed;
    test "keep-alive rules" keep_alive_rules;
    test "response roundtrip" response_roundtrip;
    test "loadgen request roundtrip" request_roundtrip;
    test "reason phrases" reason_phrases;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    test "netsim constant rate" netsim_constant_rate;
    test "netsim jitter stays monotonic" netsim_jitter_monotonic;
    test "netsim poisson" netsim_poisson;
    test "all servers serve the page" servers_serve;
    test "servers handle 404/405/400" servers_404_405;
    test "loadgen sanity" loadgen_sane;
    test "loadgen deterministic" loadgen_deterministic;
    test "throughput saturates" throughput_saturates;
    test "mc has best tail" mc_best_tail;
    test "format_request emits one content-length" format_request_content_length_once;
    test "netsim poisson determinism" netsim_poisson_properties;
    test "parser survives truncation at every prefix" parse_truncation_total;
    test "parser rejects garbage headers" parse_garbage_headers;
    test "fault plans are deterministic" faults_plan_deterministic;
    test "damaged requests rejected, crashes barriered" faults_damage_is_rejected_not_fatal;
    test "loadgen frozen counters" loadgen_frozen_counters;
    test "resilient engine matches plain at zero faults" resilient_zero_fault_equivalence;
    test "resilient run under default faults" resilient_default_faults;
    test "admission control sheds" resilient_sheds_under_tiny_cap;
    test "goodput degrades gracefully" degradation_graceful;
    test "barriers: cancelled is not a 500" barriers_distinguish_cancelled;
    test "supervised calm run completes" supervised_calm_completes;
    test "supervised chaos deterministic" supervised_chaos_deterministic;
    test "supervised drain accounts everything" supervised_drain_accounts_everything;
  ]
