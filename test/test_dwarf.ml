module F = Retrofit_fiber
module D = Retrofit_dwarf

let test name f = Alcotest.test_case name `Quick f

(* ---------------- CFI encode/decode ---------------- *)

let cfi_roundtrip () =
  let program = [ D.Cfi.Def_cfa_offset 3; Advance_loc 5; Def_cfa_offset 5 ] in
  Alcotest.(check bool) "roundtrip" true
    (D.Cfi.decode (D.Cfi.encode program) = program)

let cfi_bad_encoding () =
  Alcotest.(check bool) "odd length" true
    (match D.Cfi.decode [| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad opcode" true
    (match D.Cfi.decode [| 99; 0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_cfi_roundtrip =
  QCheck.Test.make ~name:"cfi encode/decode roundtrip" ~count:200
    QCheck.(
      list
        (oneof
           [
             map (fun n -> D.Cfi.Advance_loc n) (int_range 0 100);
             map (fun n -> D.Cfi.Def_cfa_offset n) (int_range 0 100);
           ]))
    (fun program -> D.Cfi.decode (D.Cfi.encode program) = program)

(* ---------------- Table ---------------- *)

let table_find () =
  let compiled = F.Compile.compile (F.Programs.fib ~n:5) in
  let table = D.Table.build compiled in
  Array.iter
    (fun (f : F.Compile.cfn) ->
      (match D.Table.find table ~pc:f.F.Compile.entry with
      | Some fde -> Alcotest.(check string) "entry" f.F.Compile.fn_name fde.D.Table.fde_fn
      | None -> Alcotest.fail "missing fde");
      match D.Table.find table ~pc:(f.F.Compile.code_end - 1) with
      | Some fde -> Alcotest.(check string) "last" f.F.Compile.fn_name fde.D.Table.fde_fn
      | None -> Alcotest.fail "missing fde at end")
    compiled.F.Compile.fns;
  Alcotest.(check bool) "past end" true (D.Table.find table ~pc:100_000 = None);
  Alcotest.(check bool) "negative" true (D.Table.find table ~pc:(-5) = None)

(* ---------------- Interp vs Precompiled ---------------- *)

let interp_matches_precompiled () =
  let compiled = F.Compile.compile (F.Programs.exnraise ~iters:3) in
  let table = D.Table.build compiled in
  let pre = D.Interp.Precompiled.of_table table in
  Array.iter
    (fun (fde : D.Table.fde) ->
      for pc = fde.D.Table.fde_start to fde.D.Table.fde_end - 1 do
        let interp = D.Interp.cfa_offset fde ~pc in
        match D.Interp.Precompiled.cfa_offset pre ~pc with
        | Some p -> Alcotest.(check int) (Printf.sprintf "pc %d" pc) interp p
        | None -> Alcotest.failf "precompiled missing pc %d" pc
      done)
    (D.Table.fdes table)

let interp_counts_ops () =
  let compiled = F.Compile.compile (F.Programs.exnraise ~iters:1) in
  let table = D.Table.build compiled in
  let fde = Option.get (D.Table.find table ~pc:compiled.F.Compile.fns.(0).F.Compile.entry) in
  let ops = ref 0 in
  ignore (D.Interp.cfa_offset ~ops fde ~pc:(fde.D.Table.fde_end - 1));
  Alcotest.(check bool) "counted" true (!ops > 0)

(* ---------------- Unwinding validation ---------------- *)

let validated name ?cfuns cfg p =
  let compiled = F.Compile.compile p in
  let outcome, report = D.Validate.run_validated ?cfuns cfg compiled in
  (match outcome with
  | F.Machine.Fatal m -> Alcotest.failf "%s: fatal %s" name m
  | _ -> ());
  (match report.D.Validate.mismatches with
  | [] -> ()
  | (ctx, unwound, shadow) :: _ ->
      Alcotest.failf "%s: %s\n  unwound: %s\n  shadow: %s" name ctx
        (String.concat ";" unwound) (String.concat ";" shadow));
  Alcotest.(check bool) (name ^ " probed") true (report.D.Validate.probes > 0)

let cfuns = F.Programs.standard_cfuns

let validate_recursion () =
  validated "fib stock" ~cfuns F.Config.stock (F.Programs.fib ~n:10);
  validated "fib mc" ~cfuns F.Config.mc (F.Programs.fib ~n:10);
  validated "ack mc" ~cfuns F.Config.mc (F.Programs.ack ~m:2 ~n:3)

let validate_exceptions () =
  validated "exnraise stock" ~cfuns F.Config.stock (F.Programs.exnraise ~iters:30);
  validated "exnraise mc" ~cfuns F.Config.mc (F.Programs.exnraise ~iters:30)

let validate_c_boundaries () =
  validated "extcall" ~cfuns F.Config.mc (F.Programs.extcall ~iters:30);
  validated "callback" ~cfuns F.Config.mc (F.Programs.callback ~iters:30);
  validated "meander" ~cfuns F.Config.mc F.Programs.meander

let validate_effects () =
  validated "roundtrip" ~cfuns F.Config.mc (F.Programs.effect_roundtrip ~iters:30);
  validated "reperform" ~cfuns F.Config.mc (F.Programs.effect_depth ~depth:4 ~iters:4);
  validated "counter" ~cfuns F.Config.mc (F.Programs.counter_effect ~upto:8);
  validated "discontinue" ~cfuns F.Config.mc F.Programs.discontinue_cleanup;
  validated "effect in callback" ~cfuns F.Config.mc F.Programs.effect_in_callback;
  validated "cross-fiber resume" ~cfuns F.Config.mc F.Programs.cross_resume;
  validated "multishot copies" ~cfuns
    (F.Config.with_multishot true F.Config.mc)
    F.Programs.multishot_choice

let validate_growth () =
  (* unwinding across grown (moved) stacks *)
  validated "deep recursion" ~cfuns F.Config.mc (F.Programs.deep_recursion ~depth:2_000);
  validated "deep small-initial" ~cfuns
    (F.Config.with_initial_words 16 F.Config.mc)
    (F.Programs.deep_recursion ~depth:1_000)

let meander_backtrace_names () =
  let compiled = F.Compile.compile F.Programs.meander in
  let table = D.Table.build compiled in
  let seen = ref [] in
  let hook m =
    let f = F.Machine.current_fiber m in
    if f.F.Fiber.regs.fn >= 0 then begin
      let name = (F.Machine.compiled m).F.Compile.fns.(f.regs.fn).F.Compile.fn_name in
      if name = "c_to_ocaml" then
        seen := D.Unwind.names (D.Unwind.backtrace table m)
    end
  in
  (match F.Machine.run ~cfuns ~on_call:hook F.Config.mc compiled with
  | F.Machine.Done 42, _ -> ()
  | _ -> Alcotest.fail "meander failed");
  Alcotest.(check (list string)) "names"
    [ "c_to_ocaml"; "<C>"; "omain"; "main"; "<main>" ]
    !seen

let unwind_error_on_bad_pc () =
  let compiled = F.Compile.compile (F.Programs.fib ~n:5) in
  let table = D.Table.build compiled in
  Alcotest.(check bool) "no fde" true (D.Table.find table ~pc:99_999 = None)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* §6.3.4: a backtrace snapshot of every suspended request *)
let request_snapshots () =
  let n = 5 in
  let compiled = F.Compile.compile (F.Programs.suspended_requests ~n) in
  let table = D.Table.build compiled in
  let snapshots = ref [] in
  let list_pending ctx _args =
    let m = ctx.F.Machine.machine in
    snapshots := D.Unwind.snapshot_continuations table m;
    List.length (F.Machine.live_continuations m)
  in
  (match F.Machine.run ~cfuns:[ ("list_pending", list_pending) ] F.Config.mc compiled with
  | F.Machine.Done v, _ -> Alcotest.(check int) "pending count" n v
  | _ -> Alcotest.fail "program failed");
  Alcotest.(check int) "snapshots" n (List.length !snapshots);
  List.iter
    (fun (_, entries) ->
      Alcotest.(check (list string)) "request backtrace"
        [ "req_inner"; "req_body"; "<captured>" ]
        (D.Unwind.names entries))
    !snapshots

let format_renders () =
  let s = Retrofit_experiments.Exp_backtrace.meander_backtrace () in
  Alcotest.(check bool) "has frames" true (String.length s > 0);
  Alcotest.(check bool) "mentions omain" true (contains_substring s "omain");
  Alcotest.(check bool) "mentions C frames" true (contains_substring s "<C frames>")

(* property: validation holds across random fib sizes and configs *)
let prop_validation =
  QCheck.Test.make ~name:"unwind = shadow on random programs" ~count:10
    QCheck.(pair (int_range 4 10) bool)
    (fun (n, mc) ->
      let cfg = if mc then F.Config.mc else F.Config.stock in
      let compiled = F.Compile.compile (F.Programs.fib ~n) in
      let _, report = D.Validate.run_validated ~cfuns cfg compiled in
      report.D.Validate.mismatches = [] && report.D.Validate.probes > 0)

(* ---------------- Sampling profiler ---------------- *)

let profiled_run () =
  let compiled = F.Compile.compile (F.Programs.effect_depth ~depth:4 ~iters:30) in
  let table = D.Table.build compiled in
  let prof = D.Profile.create ~interval:50 table in
  (match F.Machine.run ~on_step:(D.Profile.hook prof) F.Config.mc compiled with
  | F.Machine.Done _, _ -> ()
  | _ -> Alcotest.fail "effect_depth failed");
  prof

let profiler_samples_cross_fibers () =
  let prof = profiled_run () in
  Alcotest.(check bool) "took samples" true (D.Profile.samples prof > 0);
  Alcotest.(check int) "no unwind failures" 0 (D.Profile.failures prof);
  Alcotest.(check bool) "some stacks cross a fiber boundary" true
    (D.Profile.boundary_samples prof > 0);
  let folded = D.Profile.folded prof in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "folded mentions <fiber>" true (contains folded "<fiber>");
  (* every folded line is "stack count" with a positive count *)
  String.split_on_char '\n' folded
  |> List.iter (fun line ->
         if line <> "" then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "malformed folded line %S" line
           | Some i ->
               let n = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
               Alcotest.(check bool) "positive count" true (n > 0))

let profiler_deterministic () =
  let a = D.Profile.folded (profiled_run ()) in
  let b = D.Profile.folded (profiled_run ()) in
  Alcotest.(check string) "same workload, byte-identical profile" a b

let suite =
  [
    test "cfi roundtrip" cfi_roundtrip;
    test "cfi bad encodings" cfi_bad_encoding;
    QCheck_alcotest.to_alcotest prop_cfi_roundtrip;
    test "table find" table_find;
    test "interp = precompiled" interp_matches_precompiled;
    test "interp counts ops" interp_counts_ops;
    test "validate recursion" validate_recursion;
    test "validate exceptions" validate_exceptions;
    test "validate C boundaries" validate_c_boundaries;
    test "validate effects" validate_effects;
    test "validate across growth" validate_growth;
    test "meander backtrace names" meander_backtrace_names;
    test "no fde outside code" unwind_error_on_bad_pc;
    test "formatted backtrace" format_renders;
    test "suspended request snapshots (§6.3.4)" request_snapshots;
    test "profiler samples across fibers" profiler_samples_cross_fibers;
    test "profiler deterministic" profiler_deterministic;
    QCheck_alcotest.to_alcotest prop_validation;
  ]
