(* Eff, Sched, Mvar, Evloop, Chan, Aio *)
module C = Retrofit_core

let test name f = Alcotest.test_case name `Quick f

(* ---------------- Eff ---------------- *)

type _ Effect.t += Ask : int Effect.t

exception Boom

let eff_match_with () =
  let r =
    C.Eff.match_with
      (fun () -> C.Eff.perform Ask + 1)
      {
        C.Eff.retc = (fun v -> v * 10);
        exnc = raise;
        effc =
          (fun (type c) (eff : c C.Eff.eff) ->
            match eff with
            | Ask -> Some (fun (k : (c, int) C.Eff.continuation) -> C.Eff.continue k 3)
            | _ -> None);
      }
  in
  Alcotest.(check int) "deep handler applies retc" 40 r

let eff_value_handler () =
  let h = C.Eff.value_handler (fun v -> v + 1) in
  Alcotest.(check int) "retc" 42 (C.Eff.match_with (fun () -> 41) h);
  Alcotest.check_raises "exn reraised" Boom (fun () ->
      ignore (C.Eff.match_with (fun () -> raise Boom) h))

let eff_discontinue () =
  let r =
    C.Eff.match_with
      (fun () -> try C.Eff.perform Ask with Boom -> -1)
      {
        C.Eff.retc = Fun.id;
        exnc = raise;
        effc =
          (fun (type c) (eff : c C.Eff.eff) ->
            match eff with
            | Ask ->
                Some (fun (k : (c, int) C.Eff.continuation) -> C.Eff.discontinue k Boom)
            | _ -> None);
      }
  in
  Alcotest.(check int) "raised at perform site" (-1) r

let eff_unhandled () =
  Alcotest.check_raises "Unhandled" (Effect.Unhandled Ask) (fun () ->
      ignore (Effect.perform Ask))

let eff_one_shot () =
  let f = C.Eff.one_shot (fun x -> x + 1) in
  Alcotest.(check int) "first" 2 (f 1);
  Alcotest.check_raises "second" (Invalid_argument "one_shot: already invoked")
    (fun () -> ignore (f 1))

let eff_protect () =
  let log = ref [] in
  let r = C.Eff.protect ~finally:(fun () -> log := "f" :: !log) (fun () -> 7) in
  Alcotest.(check int) "value" 7 r;
  (try
     C.Eff.protect ~finally:(fun () -> log := "g" :: !log) (fun () -> raise Boom)
   with Boom -> ());
  Alcotest.(check (list string)) "both ran" [ "g"; "f" ] !log

(* ---------------- Sched ---------------- *)

let sched_runs_all () =
  let done_ = ref 0 in
  C.Sched.run (fun () ->
      for _ = 1 to 10 do
        C.Sched.fork (fun () -> incr done_)
      done);
  Alcotest.(check int) "all forks ran" 10 !done_

(* Fork runs the child immediately (§3.1), so policies only differ once
   threads yield: under FIFO the yielders alternate, under LIFO the
   yielding thread is resumed first and runs to completion. *)
let policy_trace policy =
  let log = ref [] in
  let worker tag () =
    log := (tag ^ "1") :: !log;
    C.Sched.yield ();
    log := (tag ^ "2") :: !log
  in
  C.Sched.run ~policy (fun () ->
      C.Sched.fork (worker "a");
      C.Sched.fork (worker "b"));
  List.rev !log

let sched_fifo_order () =
  Alcotest.(check (list string)) "fifo alternates yielders"
    [ "a1"; "b1"; "a2"; "b2" ]
    (policy_trace C.Sched.Fifo)

let sched_lifo_order () =
  Alcotest.(check (list string)) "lifo runs yielder to completion"
    [ "a1"; "a2"; "b1"; "b2" ]
    (policy_trace C.Sched.Lifo)

let sched_yield_interleaves () =
  let log = Buffer.create 16 in
  C.Sched.run (fun () ->
      C.Sched.fork (fun () ->
          Buffer.add_char log 'a';
          C.Sched.yield ();
          Buffer.add_char log 'a');
      C.Sched.fork (fun () ->
          Buffer.add_char log 'b';
          C.Sched.yield ();
          Buffer.add_char log 'b'));
  Alcotest.(check string) "interleaved" "abab" (Buffer.contents log)

let sched_nested_fork () =
  let count = ref 0 in
  C.Sched.run (fun () ->
      C.Sched.fork (fun () ->
          C.Sched.fork (fun () -> incr count);
          incr count);
      incr count);
  Alcotest.(check int) "nested" 3 !count

let sched_suspend_resume () =
  let resumer = ref None in
  let got = ref 0 in
  C.Sched.run (fun () ->
      C.Sched.fork (fun () -> got := C.Sched.suspend (fun r -> resumer := Some r));
      C.Sched.fork (fun () ->
          match !resumer with Some r -> r 42 | None -> Alcotest.fail "no resumer"));
  Alcotest.(check int) "resumed with value" 42 !got

let sched_resumer_once () =
  let boom = ref None in
  C.Sched.run (fun () ->
      let r = ref (fun (_ : int) -> ()) in
      C.Sched.fork (fun () -> ignore (C.Sched.suspend (fun resume -> r := resume)));
      C.Sched.fork (fun () ->
          !r 1;
          match !r 2 with () -> () | exception C.Sched.One_shot -> boom := Some ()));
  Alcotest.(check bool) "second resume raises One_shot" true (!boom = Some ())

(* ---------------- Cancellation (§2.3) ---------------- *)

(* Cancelling a fiber parked in Suspend discontinues it with Cancelled
   at the suspension point, its exception-driven cleanup runs, and the
   now-dead resumer becomes a clean no-op (not One_shot). *)
let sched_cancel_suspended () =
  let log = ref [] in
  let resumer = ref (fun (_ : int) -> ()) in
  C.Sched.run (fun () ->
      let cancel =
        C.Sched.fork_cancellable (fun () ->
            match
              C.Eff.protect
                ~finally:(fun () -> log := "cleanup" :: !log)
                (fun () -> C.Sched.suspend (fun r -> resumer := r))
            with
            | _ -> log := "returned" :: !log
            | exception C.Sched.Cancelled -> log := "cancelled" :: !log)
      in
      C.Sched.fork (fun () ->
          cancel ();
          C.Sched.yield ();
          (* The suspension was consumed by the cancel: resuming is a
             no-op, not a crash. *)
          !resumer 42;
          log := "resumed-after-cancel" :: !log));
  Alcotest.(check (list string))
    "cleanup ran, resumer no-op"
    [ "cleanup"; "cancelled"; "resumed-after-cancel" ]
    (List.rev !log)

(* Cancelling after the fiber completed is a no-op, as is a second
   cancel. *)
let sched_cancel_completed () =
  let ran = ref false in
  C.Sched.run (fun () ->
      let cancel = C.Sched.fork_cancellable (fun () -> ran := true) in
      C.Sched.yield ();
      cancel ();
      cancel ());
  Alcotest.(check bool) "fiber ran to completion" true !ran

(* A cancel issued while the fiber is runnable (not parked) lands at
   its next suspension point. *)
let sched_cancel_before_suspend () =
  let log = ref [] in
  C.Sched.run (fun () ->
      let cancel =
        C.Sched.fork_cancellable (fun () ->
            log := "start" :: !log;
            C.Sched.yield ();
            (match C.Sched.suspend (fun _ -> ()) with
            | (_ : int) -> log := "woke" :: !log
            | exception C.Sched.Cancelled -> log := "cancelled" :: !log);
            log := "after" :: !log)
      in
      cancel ());
  Alcotest.(check (list string))
    "discontinued at next suspension"
    [ "start"; "cancelled"; "after" ]
    (List.rev !log)

(* ---------------- Mvar ---------------- *)

let mvar_basic () =
  C.Sched.run (fun () ->
      let mv = C.Mvar.create 1 in
      Alcotest.(check int) "take full" 1 (C.Mvar.take mv);
      Alcotest.(check bool) "now empty" true (C.Mvar.is_empty mv);
      C.Mvar.put mv 2;
      Alcotest.(check (option int)) "try_take" (Some 2) (C.Mvar.try_take mv);
      Alcotest.(check (option int)) "try_take empty" None (C.Mvar.try_take mv))

let mvar_blocking_take () =
  let got = ref [] in
  C.Sched.run (fun () ->
      let mv = C.Mvar.create_empty () in
      C.Sched.fork (fun () ->
          let v = C.Mvar.take mv in
          got := ("a", v) :: !got);
      C.Sched.fork (fun () ->
          let v = C.Mvar.take mv in
          got := ("b", v) :: !got);
      C.Sched.fork (fun () ->
          C.Mvar.put mv 1;
          C.Mvar.put mv 2));
  (* takers are served in FIFO order *)
  Alcotest.(check (list (pair string int))) "fifo takers" [ ("a", 1); ("b", 2) ]
    (List.rev !got)

let mvar_blocking_put () =
  let order = ref [] in
  C.Sched.run (fun () ->
      let mv = C.Mvar.create 0 in
      C.Sched.fork (fun () ->
          C.Mvar.put mv 1;
          order := "p1 done" :: !order);
      C.Sched.fork (fun () ->
          let a = C.Mvar.take mv in
          order := Printf.sprintf "take %d" a :: !order;
          let b = C.Mvar.take mv in
          order := Printf.sprintf "take %d" b :: !order));
  Alcotest.(check (list string)) "put parked then served"
    [ "take 0"; "take 1"; "p1 done" ]
    (List.rev !order)

(* A taker cancelled while parked is purged eagerly: the wait queue
   drops it immediately and a later put goes to the surviving taker. *)
let mvar_cancelled_taker_purged () =
  let got = ref None and cancelled = ref 0 in
  C.Sched.run (fun () ->
      let mv = C.Mvar.create_empty () in
      let cancel =
        C.Sched.fork_cancellable (fun () ->
            try ignore (C.Mvar.take mv)
            with C.Sched.Cancelled ->
              incr cancelled;
              raise C.Sched.Cancelled)
      in
      C.Sched.fork (fun () -> got := Some (C.Mvar.take mv));
      Alcotest.(check int) "two takers parked" 2 (C.Mvar.waiters mv);
      cancel ();
      Alcotest.(check int) "purged eagerly on cancel" 1 (C.Mvar.waiters mv);
      C.Mvar.put mv 9;
      C.Sched.yield ();
      Alcotest.(check (option int)) "survivor got the value" (Some 9) !got;
      Alcotest.(check int) "cancelled exactly once" 1 !cancelled)

(* A putter cancelled while parked never deposits its value. *)
let mvar_cancelled_putter_purged () =
  C.Sched.run (fun () ->
      let mv = C.Mvar.create 0 in
      let cancel = C.Sched.fork_cancellable (fun () -> C.Mvar.put mv 1) in
      Alcotest.(check int) "putter parked" 1 (C.Mvar.waiters mv);
      cancel ();
      Alcotest.(check int) "purged eagerly on cancel" 0 (C.Mvar.waiters mv);
      Alcotest.(check int) "stored value intact" 0 (C.Mvar.take mv);
      Alcotest.(check (option int)) "cancelled put never lands" None
        (C.Mvar.try_take mv))

(* ---------------- Evloop ---------------- *)

let evloop_ordering () =
  let loop = C.Evloop.create () in
  let log = ref [] in
  C.Evloop.after loop ~delay:30 (fun () -> log := 30 :: !log);
  C.Evloop.after loop ~delay:10 (fun () -> log := 10 :: !log);
  C.Evloop.after loop ~delay:20 (fun () -> log := 20 :: !log);
  C.Evloop.drain loop;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last" 30 (C.Evloop.now loop)

let evloop_same_instant () =
  let loop = C.Evloop.create () in
  let log = ref [] in
  C.Evloop.after loop ~delay:5 (fun () -> log := "a" :: !log);
  C.Evloop.after loop ~delay:5 (fun () -> log := "b" :: !log);
  Alcotest.(check bool) "one advance runs both" true (C.Evloop.advance_once loop);
  Alcotest.(check (list string)) "both" [ "a"; "b" ] (List.rev !log)

let evloop_advance_until () =
  let loop = C.Evloop.create () in
  let flag = ref false in
  C.Evloop.after loop ~delay:50 (fun () -> flag := true);
  C.Evloop.after loop ~delay:100 (fun () -> ());
  Alcotest.(check bool) "reached" true (C.Evloop.advance_until loop (fun () -> !flag));
  Alcotest.(check int) "stopped at 50" 50 (C.Evloop.now loop);
  Alcotest.(check int) "one pending" 1 (C.Evloop.pending loop)

let evloop_negative_delay () =
  let loop = C.Evloop.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Evloop.after: negative delay")
    (fun () -> C.Evloop.after loop ~delay:(-1) (fun () -> ()))

(* ---------------- Chan ---------------- *)

let chan_feed_and_read () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic loop in
  C.Chan.feed_line ic ~delay:10 "hello";
  C.Chan.feed_eof ic ~delay:20;
  Alcotest.(check bool) "not ready" true (C.Chan.read_line_nonblock ic = `Not_ready);
  Alcotest.(check string) "blocking read" "hello" (C.Chan.read_line_blocking ic);
  Alcotest.check_raises "eof" End_of_file (fun () ->
      ignore (C.Chan.read_line_blocking ic))

let chan_closed () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic loop in
  C.Chan.close_in ic;
  Alcotest.(check bool) "sys_error" true
    (match C.Chan.read_line_nonblock ic with
    | _ -> false
    | exception Sys_error _ -> true);
  let oc = C.Chan.make_oc loop in
  C.Chan.write_string oc "x";
  C.Chan.close_out oc;
  Alcotest.(check bool) "write closed" true
    (match C.Chan.write_string oc "y" with
    | _ -> false
    | exception Sys_error _ -> true);
  Alcotest.(check string) "contents" "x" (C.Chan.contents oc)

let chan_lazy_latency () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:100 [ "a"; "b" ] in
  Alcotest.(check string) "first" "a" (C.Chan.read_line_blocking ic);
  Alcotest.(check int) "after first" 100 (C.Evloop.now loop);
  Alcotest.(check string) "second" "b" (C.Chan.read_line_blocking ic);
  Alcotest.(check int) "after second" 200 (C.Evloop.now loop);
  Alcotest.check_raises "eof after latency" End_of_file (fun () ->
      ignore (C.Chan.read_line_blocking ic));
  Alcotest.(check int) "eof costs latency too" 300 (C.Evloop.now loop)

let chan_blocked_forever () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic loop in
  Alcotest.(check bool) "sys_error" true
    (match C.Chan.read_line_blocking ic with
    | _ -> false
    | exception Sys_error _ -> true)

(* ---------------- Aio ---------------- *)

let aio_copy_both_runners () =
  List.iter
    (fun runner ->
      let loop = C.Evloop.create () in
      let ic = C.Chan.make_ic_lazy loop ~latency:10 [ "x"; "y" ] in
      let oc = C.Chan.make_oc loop in
      runner loop (fun () -> C.Aio.copy ic oc);
      Alcotest.(check string) "copied" "x\ny\n" (C.Chan.contents oc))
    [ C.Aio.run_sync; C.Aio.run_async ]

let aio_async_overlaps () =
  let time runner =
    let loop = C.Evloop.create () in
    let mk () = C.Chan.make_ic_lazy loop ~latency:100 [ "1"; "2" ] in
    let a = mk () and b = mk () in
    let oa = C.Chan.make_oc loop and ob = C.Chan.make_oc loop in
    runner loop (fun () ->
        C.Sched.fork (fun () -> C.Aio.copy a oa);
        C.Aio.copy b ob);
    C.Evloop.now loop
  in
  let sync = time C.Aio.run_sync and async = time C.Aio.run_async in
  Alcotest.(check bool)
    (Printf.sprintf "async (%d) < sync (%d)" async sync)
    true (async < sync)

let aio_deadlock_detected () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic loop in
  (* no data will ever arrive *)
  Alcotest.(check bool) "failure" true
    (match C.Aio.run_async loop (fun () -> ignore (C.Aio.input_line ic)) with
    | _ -> false
    | exception Failure _ -> true)

let aio_mix_with_mvar () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:5 [ "data" ] in
  let result = ref "" in
  C.Aio.run_async loop (fun () ->
      let mv = C.Mvar.create_empty () in
      C.Sched.fork (fun () -> C.Mvar.put mv (C.Aio.input_line ic));
      result := C.Mvar.take mv);
  Alcotest.(check string) "threaded through mvar" "data" !result

(* Cancellation composes with async I/O: a timeout cancels [copy]
   mid-read, the §3.2 exception-driven cleanup closes both channels,
   and the pending read's completion is a no-op. *)
let aio_timeout_cancels_copy () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:100 [ "a"; "b"; "c"; "d" ] in
  let oc = C.Chan.make_oc loop in
  let status = ref (fun () -> (`Running : C.Aio.timeout_status)) in
  C.Aio.run_async loop (fun () -> status := C.Aio.timeout loop ~delay:250 (fun () -> C.Aio.copy ic oc));
  Alcotest.(check bool) "status cancelled" true (!status () = `Cancelled);
  Alcotest.(check string) "partial copy" "a\nb\n" (C.Chan.contents oc);
  Alcotest.(check bool) "ic closed by cleanup" true
    (match C.Chan.read_line_nonblock ic with
    | _ -> false
    | exception Sys_error _ -> true);
  Alcotest.(check bool) "oc closed by cleanup" true
    (match C.Chan.write_string oc "z" with
    | _ -> false
    | exception Sys_error _ -> true)

let aio_timeout_completes () =
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:10 [ "a" ] in
  let oc = C.Chan.make_oc loop in
  let status = ref (fun () -> (`Running : C.Aio.timeout_status)) in
  C.Aio.run_async loop (fun () ->
      status := C.Aio.timeout loop ~delay:10_000 (fun () -> C.Aio.copy ic oc));
  Alcotest.(check bool) "status done" true (!status () = `Done);
  Alcotest.(check string) "full copy" "a\n" (C.Chan.contents oc)

(* ---------------- Ctl protocol edges under Aio ---------------- *)

(* §2.3 cancellation edges exercised through the async runner: cancel
   after finish and double cancel are no-ops, in both runners. *)
let aio_ctl_edges () =
  List.iter
    (fun run ->
      let loop = C.Evloop.create () in
      let ran = ref 0 in
      run loop (fun () ->
          let cancel = C.Sched.fork_cancellable (fun () -> incr ran) in
          C.Sched.yield ();
          cancel ();
          cancel ());
      Alcotest.(check int) "ran once, cancels no-ops" 1 !ran)
    [ C.Aio.run_sync ?chaos:None; C.Aio.run_async ?chaos:None ]

(* A fiber cancelled while parked on a pending read: the §3.2 cleanup
   unwinds it, the eager purge drops it from the pending list, and the
   I/O completing later must not revive it. *)
let aio_cancel_races_pending_resume () =
  let cancelled = ref 0 and revived = ref false and got = ref None in
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:100 [ "x"; "y" ] in
  C.Aio.run_async loop (fun () ->
      let cancel =
        C.Sched.fork_cancellable (fun () ->
            (try ignore (C.Aio.input_line ic)
             with C.Sched.Cancelled ->
               incr cancelled;
               raise C.Sched.Cancelled);
            revived := true)
      in
      (* the child is parked on the not-yet-ready line; cancel it just
         before the data arrives *)
      cancel ();
      cancel ();
      (* a second reader issued after the cancel gets the line the dead
         one must not consume *)
      got := Some (C.Aio.input_line ic));
  Alcotest.(check int) "cancelled exactly once" 1 !cancelled;
  Alcotest.(check bool) "completion did not revive it" false !revived;
  Alcotest.(check (option string)) "line went to the live reader"
    (Some "x") !got

(* ---------------- chaos scheduling ---------------- *)

(* The same seed must produce the same interleaving, kill decisions and
   injection counters — run the workload twice and compare everything. *)
let chaos_run seed =
  let log = ref [] in
  let chaos =
    {
      (C.Sched.Chaos.default ~seed) with
      C.Sched.Chaos.kill_rate = 0.05;
      delay_rate = 0.2;
      reorder_rate = 0.3;
      spurious_rate = 0.1;
    }
  in
  C.Sched.run ~chaos (fun () ->
      for i = 1 to 4 do
        let (_ : unit -> unit) =
          C.Sched.fork_cancellable (fun () ->
               C.Sched.set_killable (i mod 2 = 0);
               Fun.protect
                 ~finally:(fun () -> log := (i, -1) :: !log)
                 (fun () ->
                   for j = 1 to 5 do
                     log := (i, j) :: !log;
                     C.Sched.yield ()
                   done))
        in
        ()
      done);
  let stats =
    match C.Sched.chaos_stats () with
    | Some s ->
        C.Sched.Chaos.
          [ s.kills; s.delays; s.reorders; s.spurious ]
    | None -> []
  in
  (List.rev !log, stats)

let sched_chaos_deterministic () =
  let log1, stats1 = chaos_run 11 in
  let log2, stats2 = chaos_run 11 in
  Alcotest.(check (list (pair int int))) "same interleaving" log1 log2;
  Alcotest.(check (list int)) "same injection counters" stats1 stats2;
  Alcotest.(check bool) "chaos actually injected" true
    (List.exists (fun n -> n > 0) stats1)

(* Only fibers that opted in via [set_killable] are ever killed. *)
let sched_chaos_kills_killable_only () =
  let safe_steps = ref 0 and killable_unwound = ref 0 in
  let chaos =
    { (C.Sched.Chaos.default ~seed:3) with C.Sched.Chaos.kill_rate = 1.0 }
  in
  C.Sched.run ~chaos (fun () ->
      let (_ : unit -> unit) =
        C.Sched.fork_cancellable (fun () ->
            C.Sched.set_killable true;
            Fun.protect
              ~finally:(fun () -> incr killable_unwound)
              (fun () ->
                for _ = 1 to 5 do
                  C.Sched.yield ()
                done))
      in
      let (_ : unit -> unit) =
        C.Sched.fork_cancellable (fun () ->
            for _ = 1 to 5 do
              incr safe_steps;
              C.Sched.yield ()
            done)
      in
      ());
  Alcotest.(check int) "non-killable fiber untouched" 5 !safe_steps;
  Alcotest.(check int) "killable fiber unwound once" 1 !killable_unwound

(* Chaos through the async I/O runner: same seed, same bytes. *)
let aio_chaos_deterministic () =
  let run () =
    let loop = C.Evloop.create () in
    let ic = C.Chan.make_ic_lazy loop ~latency:10 [ "a"; "b"; "c" ] in
    let oc = C.Chan.make_oc loop in
    let chaos =
      {
        (C.Sched.Chaos.default ~seed:21) with
        C.Sched.Chaos.delay_rate = 0.3;
        spurious_rate = 0.2;
      }
    in
    C.Aio.run_async ~chaos loop (fun () -> C.Aio.copy ic oc);
    C.Chan.contents oc
  in
  let a = run () and b = run () in
  Alcotest.(check string) "double run byte-identical" a b;
  Alcotest.(check string) "nothing lost under chaos" "a\nb\nc\n" a

let suite =
  [
    test "eff match_with deep" eff_match_with;
    test "eff value handler" eff_value_handler;
    test "eff discontinue" eff_discontinue;
    test "eff unhandled" eff_unhandled;
    test "eff one_shot" eff_one_shot;
    test "eff protect" eff_protect;
    test "sched runs all forks" sched_runs_all;
    test "sched fifo" sched_fifo_order;
    test "sched lifo" sched_lifo_order;
    test "sched yield interleaves" sched_yield_interleaves;
    test "sched nested fork" sched_nested_fork;
    test "sched suspend/resume" sched_suspend_resume;
    test "sched resumer once" sched_resumer_once;
    test "sched cancel suspended" sched_cancel_suspended;
    test "sched cancel completed" sched_cancel_completed;
    test "sched cancel before suspend" sched_cancel_before_suspend;
    test "mvar basics" mvar_basic;
    test "mvar blocking take" mvar_blocking_take;
    test "mvar blocking put" mvar_blocking_put;
    test "mvar cancelled taker purged" mvar_cancelled_taker_purged;
    test "mvar cancelled putter purged" mvar_cancelled_putter_purged;
    test "evloop ordering" evloop_ordering;
    test "evloop same instant" evloop_same_instant;
    test "evloop advance_until" evloop_advance_until;
    test "evloop negative delay" evloop_negative_delay;
    test "chan feed and read" chan_feed_and_read;
    test "chan closed" chan_closed;
    test "chan lazy latency" chan_lazy_latency;
    test "chan blocked forever" chan_blocked_forever;
    test "aio copy both runners" aio_copy_both_runners;
    test "aio async overlaps" aio_async_overlaps;
    test "aio deadlock detected" aio_deadlock_detected;
    test "aio with mvar" aio_mix_with_mvar;
    test "aio timeout cancels copy" aio_timeout_cancels_copy;
    test "aio timeout completes" aio_timeout_completes;
    test "aio ctl edges both runners" aio_ctl_edges;
    test "aio cancel races pending resume" aio_cancel_races_pending_resume;
    test "sched chaos deterministic" sched_chaos_deterministic;
    test "sched chaos kills killable only" sched_chaos_kills_killable_only;
    test "aio chaos deterministic" aio_chaos_deterministic;
  ]
