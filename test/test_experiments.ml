module E = Retrofit_experiments
module H = Retrofit_harness

let test name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let harness_measure () =
  let m = H.Bench.measure ~warmups:1 ~runs:3 (fun () -> Sys.opaque_identity 1) in
  Alcotest.(check int) "runs" 3 (Array.length m.H.Bench.runs_ns);
  Alcotest.(check bool) "median positive" true (m.median_ns >= 0.0);
  Alcotest.(check bool) "per op" true
    (H.Bench.per_op_ns ~warmups:0 ~runs:1 ~iters:10 (fun () -> ()) >= 0.0)

let harness_clock_monotone () =
  let a = H.Clock.now_ns () in
  let b = H.Clock.now_ns () in
  Alcotest.(check bool) "monotone" true (Int64.compare b a >= 0)

let registry_ids () =
  Alcotest.(check int) "16 experiments" 16 (List.length E.Registry.all);
  Alcotest.(check bool) "find" true (E.Registry.find "table1" <> None);
  Alcotest.(check bool) "find degradation" true (E.Registry.find "degradation" <> None);
  Alcotest.(check bool) "find stacklab" true (E.Registry.find "stacklab" <> None);
  Alcotest.(check bool) "find causal" true (E.Registry.find "causal" <> None);
  Alcotest.(check bool) "missing" true (E.Registry.find "zzz" = None);
  let ids = E.Registry.ids () in
  Alcotest.(check int) "unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let table1_shape () =
  let rows = E.Exp_table1.rows ~quick:true () in
  Alcotest.(check int) "9 rows" 9 (List.length rows);
  List.iter
    (fun (r : E.Exp_table1.row) ->
      Alcotest.(check bool) (r.bench ^ " mc >= stock") true
        (r.mc_instr >= r.stock_instr))
    rows;
  (* the paper's key qualitative claim: exceptions cost the same *)
  let exn_rows =
    List.filter (fun (r : E.Exp_table1.row) -> r.bench = "exnval" || r.bench = "exnraise") rows
  in
  List.iter
    (fun (r : E.Exp_table1.row) ->
      Alcotest.(check (float 0.01)) (r.bench ^ " +0.0") 0.0 r.instr_pct)
    exn_rows;
  (* callback is the most expensive row, as in the paper *)
  let pct b = (List.find (fun (r : E.Exp_table1.row) -> r.bench = b) rows).instr_pct in
  Alcotest.(check bool) "callback worst" true
    (List.for_all (fun (r : E.Exp_table1.row) -> pct "callback" >= r.instr_pct) rows)

let fig5_shape () =
  let check_rows rows =
    List.iter
      (fun (r : E.Exp_fig5.row) ->
        let v name = List.assoc name r.E.Exp_fig5.normalized in
        Alcotest.(check bool) (r.workload ^ " rz0 >= mc") true (v "mc+rz0" >= v "mc" -. 1e-9);
        Alcotest.(check bool) (r.workload ^ " mc >= rz32") true
          (v "mc" >= v "mc+rz32" -. 1e-9);
        Alcotest.(check bool) (r.workload ^ " >= 1") true (v "mc+rz32" >= 1.0 -. 1e-9))
      rows
  in
  check_rows (E.Exp_fig5.macro_rows ());
  check_rows (E.Exp_fig5.ir_rows ());
  (* headline numbers: rz0 inflates OTSS noticeably more than rz16 *)
  let gm = E.Exp_fig5.geomeans (E.Exp_fig5.macro_rows ()) in
  Alcotest.(check bool) "rz0 > mc overall" true
    (List.assoc "mc+rz0" gm > List.assoc "mc" gm)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let backtrace_report () =
  let s = E.Exp_backtrace.report ~quick:true () in
  Alcotest.(check bool) "no mismatches" false (contains s "MISMATCH");
  Alcotest.(check bool) "no fatals" false (contains s "FATAL");
  Alcotest.(check bool) "shows the C boundary" true (contains s "<C frames>")

let opcost_sane () =
  let r = E.Exp_opcost.run ~quick:true () in
  Alcotest.(check bool) "setup+teardown > 0" true (r.E.Exp_opcost.setup_teardown_ns > 0.0);
  Alcotest.(check bool) "per perform > 0" true (r.per_perform_ns > 0.0);
  Alcotest.(check bool) "roundtrip >= setup" true
    (r.roundtrip_ns >= r.setup_teardown_ns *. 0.5)

(* Quick-mode iteration counts leave the speedup ratios close enough
   that scheduler noise occasionally inverts one; re-measure a couple of
   times before treating an inversion as a real failure. *)
let rec retrying attempts measure good =
  let r = measure () in
  if attempts > 1 && not (good r) then retrying (attempts - 1) measure good else r

let table2_quick () =
  let rows =
    retrying 3
      (fun () -> E.Exp_table2.rows ~quick:true ())
      (List.for_all (fun (r : E.Exp_table2.row) ->
           r.handler_x > 1.0 && r.monad_x > r.handler_x))
  in
  Alcotest.(check int) "5 rows" 5 (List.length rows);
  List.iter
    (fun (r : E.Exp_table2.row) ->
      Alcotest.(check bool) (r.bench ^ " handler slower") true (r.handler_x > 1.0);
      Alcotest.(check bool) (r.bench ^ " monad slower than handler") true
        (r.monad_x > r.handler_x))
    rows

let concurrent_quick () =
  let g =
    retrying 3
      (fun () -> E.Exp_concurrent.generators ~quick:true ())
      (fun g -> g.E.Exp_concurrent.effect_x > 1.0 && g.monad_x > g.effect_x)
  in
  Alcotest.(check bool) "cps fastest" true
    (g.E.Exp_concurrent.effect_x > 1.0 && g.monad_x > g.effect_x);
  let c =
    retrying 3
      (fun () -> E.Exp_concurrent.chameneos ~quick:true ())
      (fun c -> c.E.Exp_concurrent.monad_x > 1.0)
  in
  Alcotest.(check bool) "effects fastest" true (c.E.Exp_concurrent.monad_x > 1.0);
  let f =
    retrying 3
      (fun () -> E.Exp_concurrent.finalisers ~quick:true ())
      (fun f -> f.E.Exp_concurrent.generator_x > 1.0)
  in
  Alcotest.(check bool) "finalisers cost" true (f.E.Exp_concurrent.generator_x > 1.0)

let fig4_quick () =
  let rows = E.Exp_fig4.rows ~quick:true () in
  Alcotest.(check int) "19 rows" 19 (List.length rows);
  let gms = E.Exp_fig4.geomeans rows in
  let stock = List.assoc "stock" gms in
  Alcotest.(check (float 1e-9)) "stock normalized to 1" 1.0 stock;
  (* the headline claim: overhead is small *)
  let mc = List.assoc "mc" gms in
  Alcotest.(check bool) (Printf.sprintf "mc geomean %.3f < 1.25" mc) true (mc < 1.25)

let reports_render () =
  (* every registry entry produces non-empty text in quick mode *)
  List.iter
    (fun (e : E.Registry.t) ->
      match e.id with
      | "fig4" | "table2" | "generators" | "chameneos" | "finalisers" | "opcost" ->
          () (* covered by the dedicated quick tests above; skip double work *)
      | _ ->
          let s = e.run ~quick:true () in
          Alcotest.(check bool) (e.id ^ " nonempty") true (String.length s > 100))
    E.Registry.all

let suite =
  [
    test "harness measure" harness_measure;
    test "harness clock monotone" harness_clock_monotone;
    test "registry ids" registry_ids;
    test "table1 shape" table1_shape;
    test "fig5 shape" fig5_shape;
    test "backtrace report clean" backtrace_report;
    slow "opcost sane" opcost_sane;
    slow "table2 quick" table2_quick;
    slow "concurrent quick" concurrent_quick;
    slow "fig4 quick" fig4_quick;
    slow "reports render" reports_render;
  ]
