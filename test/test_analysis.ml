(* Static effect-safety analyzer: the corpus verdict table, targeted
   cases per diagnostic kind, the red-zone audit (including an injected
   unsound elision), frame metadata cross-checks, printer injectivity,
   and an in-test analyzer-vs-oracle soundness fuzz. *)

module C = Retrofit_conformance
module A = Retrofit_analysis
module F = Retrofit_fiber
module M = Retrofit_macro

let test name f = Alcotest.test_case name `Quick f

let vstr = A.Diag.verdict_to_string

(* The built-in programs' C stubs, modelled precisely (same table as
   `retrofit lint`). *)
let builtin_cfun_model = function
  | "c_id" | "list_pending" -> A.Cfg.Pure
  | "c_cb" -> A.Cfg.Calls_back "ocaml_id"
  | "ocaml_to_c" -> A.Cfg.Calls_back "c_to_ocaml"
  | _ -> A.Cfg.Opaque

let lint p = A.Analyze.lint ~cfun_model:builtin_cfun_model p

let kinds (r : A.Diag.report) =
  List.map (fun (d : A.Diag.t) -> A.Diag.kind_label d.A.Diag.kind) r.A.Diag.diags

let has_kind k r = List.mem k (kinds r)

let fn name params body =
  { F.Ir.fn_name = name; F.Ir.params = params; F.Ir.body = body }

let prog fns = { F.Ir.fns; F.Ir.main = "main" }

(* ------------------------------------------------------------------ *)
(* Corpus verdict table: the analyzer's program-level claims on all ten
   hand-written edge cases, pinned exactly.  Every claim is consistent
   with the entry's traced outcome — Must where the outcome is the
   claimed one, Safe only where the outcome shows it never happens. *)

let corpus_table =
  [
    ("double_resume_after_return", A.Diag.Safe, A.Diag.Must);
    ("discontinue_never_resumed", A.Diag.Safe, A.Diag.Safe);
    ("effect_in_return_branch", A.Diag.Safe, A.Diag.Safe);
    ("effect_in_return_unhandled", A.Diag.Must, A.Diag.Safe);
    ("discontinue_then_continue", A.Diag.Safe, A.Diag.Must);
    ("unhandled_in_callback", A.Diag.Safe, A.Diag.Safe);
    ("div_by_zero_payload", A.Diag.Safe, A.Diag.Safe);
    ("deep_growth_capture", A.Diag.Safe, A.Diag.Safe);
    ("nested_reperform", A.Diag.Safe, A.Diag.Safe);
    ("exception_through_handler", A.Diag.Safe, A.Diag.Safe);
  ]

let corpus_verdict_table () =
  Alcotest.(check int)
    "table covers the corpus" (List.length C.Corpus.entries)
    (List.length corpus_table);
  List.iter
    (fun (e : C.Corpus.entry) ->
      let name = e.C.Corpus.name in
      match
        List.find_opt (fun (n, _, _) -> n = name) corpus_table
      with
      | None -> Alcotest.failf "corpus entry %s missing from the table" name
      | Some (_, eu, eo) ->
          let c = C.Static.analyze e.C.Corpus.program in
          let vu, vo = C.Static.verdicts ~one_shot:true c in
          Alcotest.(check string)
            (name ^ " unhandled") (vstr eu) (vstr vu);
          Alcotest.(check string)
            (name ^ " one-shot") (vstr eo) (vstr vo);
          (* and the claim never contradicts the traced outcome *)
          match C.Static.contradiction c e.C.Corpus.expect with
          | None -> ()
          | Some msg -> Alcotest.failf "%s: unsound claim: %s" name msg)
    C.Corpus.entries

(* The cross-check itself must be able to catch unsound claims in both
   directions; feed settled claims the opposite outcome. *)
let checker_catches_unsound_claims () =
  let safe_entry =
    List.find
      (fun (e : C.Corpus.entry) -> e.C.Corpus.name = "effect_in_return_branch")
      C.Corpus.entries
  in
  let c = C.Static.analyze safe_entry.C.Corpus.program in
  (match C.Static.contradiction c C.Outcome.Unhandled with
  | Some _ -> ()
  | None -> Alcotest.fail "safe-from-Unhandled claim not held against Unhandled");
  (match C.Static.contradiction c C.Outcome.One_shot with
  | Some _ -> ()
  | None -> Alcotest.fail "safe-from-one-shot claim not held against One_shot");
  let must_entry =
    List.find
      (fun (e : C.Corpus.entry) ->
        e.C.Corpus.name = "double_resume_after_return")
      C.Corpus.entries
  in
  let c = C.Static.analyze must_entry.C.Corpus.program in
  match C.Static.contradiction c (C.Outcome.Value 0) with
  | Some _ -> ()
  | None -> Alcotest.fail "must-one-shot claim not held against a value outcome"

(* ------------------------------------------------------------------ *)
(* Targeted cases, one per diagnostic kind, over the built-ins. *)

let possibly_unhandled_flagged () =
  let r = lint F.Programs.unhandled_effect in
  Alcotest.(check string) "unhandled verdict" "must" (vstr r.A.Diag.unhandled);
  Alcotest.(check bool) "flagged" true (has_kind "possibly-unhandled" r)

let effect_across_c_frame_flagged () =
  let r = lint F.Programs.effect_in_callback in
  let found =
    List.exists
      (fun (d : A.Diag.t) ->
        match d.A.Diag.kind with
        | A.Diag.Effect_across_c_frame { effect_name = "E"; cfun = "ocaml_to_c" }
          ->
            d.A.Diag.fn = "c_to_ocaml"
        | _ -> false)
      r.A.Diag.diags
  in
  Alcotest.(check bool) "E barred at ocaml_to_c's frame" true found;
  (* the callback's blanked handler chain also makes main's E clause
     dead: the Unhandled is caught inside the callback and the effect
     never reaches the installation *)
  Alcotest.(check bool) "dead clause" true (has_kind "dead-handler-clause" r)

let may_resume_twice_flagged () =
  List.iter
    (fun p ->
      let r = lint p in
      Alcotest.(check string) "one-shot verdict" "must" (vstr r.A.Diag.one_shot);
      Alcotest.(check bool) "flagged" true (has_kind "may-resume-twice" r))
    [ F.Programs.one_shot_violation; F.Programs.multishot_choice ]

let may_leak_flagged () =
  let r = lint (F.Programs.suspended_requests ~n:3) in
  let found =
    List.exists
      (fun (d : A.Diag.t) ->
        match d.A.Diag.kind with
        | A.Diag.May_leak _ -> d.A.Diag.verdict = A.Diag.Must
        | _ -> false)
      r.A.Diag.diags
  in
  Alcotest.(check bool) "parked continuations are a must-leak" true found

let dead_exn_clause_flagged () =
  (* the body performs (so the effect clause is live) but never raises
     A, and nothing discontinues with A: the exn clause can't fire *)
  let p =
    prog
      [
        fn "id" [ "x" ] (F.Ir.Var "x");
        fn "body" [] (F.Ir.Perform ("E", F.Ir.Int 1));
        fn "h" [ "x"; "k" ] (F.Ir.Continue (F.Ir.Var "k", F.Ir.Var "x"));
        fn "main" []
          (F.Ir.Handle
             {
               F.Ir.body_fn = "body";
               F.Ir.body_args = [];
               F.Ir.retc = "id";
               F.Ir.exncs = [ ("A", "id") ];
               F.Ir.effcs = [ ("E", "h") ];
             });
      ]
  in
  let r = lint p in
  let found =
    List.exists
      (fun (d : A.Diag.t) ->
        match d.A.Diag.kind with
        | A.Diag.Dead_handler_clause
            { clause = A.Diag.Exn_clause; label = "A"; _ } ->
            d.A.Diag.verdict = A.Diag.Must
        | _ -> false)
      r.A.Diag.diags
  in
  Alcotest.(check bool) "dead exn clause" true found;
  (* the live effect clause is not reported *)
  let eff_dead =
    List.exists
      (fun (d : A.Diag.t) ->
        match d.A.Diag.kind with
        | A.Diag.Dead_handler_clause { clause = A.Diag.Eff_clause; _ } -> true
        | _ -> false)
      r.A.Diag.diags
  in
  Alcotest.(check bool) "live eff clause not reported" false eff_dead

let clean_programs_have_no_findings () =
  List.iter
    (fun (name, p) ->
      let r = lint p in
      if r.A.Diag.diags <> [] then
        Alcotest.failf "%s: unexpected findings:\n%s" name
          (A.Diag.report_to_string r);
      Alcotest.(check string)
        (name ^ " unhandled") "safe"
        (vstr r.A.Diag.unhandled);
      Alcotest.(check string) (name ^ " one-shot") "safe" (vstr r.A.Diag.one_shot))
    [
      ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:3);
      ("counter_effect", F.Programs.counter_effect ~upto:4);
      ("cross_resume", F.Programs.cross_resume);
      ("meander", F.Programs.meander);
      ("exnraise", F.Programs.exnraise ~iters:2);
      ("extcall", F.Programs.extcall ~iters:2);
      ("callback", F.Programs.callback ~iters:2);
    ]

let diagnostics_are_deterministic () =
  let r1 = lint F.Programs.multishot_choice
  and r2 = lint F.Programs.multishot_choice in
  Alcotest.(check bool) "identical reports" true
    (A.Diag.report_to_string r1 = A.Diag.report_to_string r2)

(* ------------------------------------------------------------------ *)
(* Red-zone audit. *)

let audit_suite =
  [
    F.Programs.fib ~n:5;
    F.Programs.ack ~m:2 ~n:2;
    F.Programs.exnraise ~iters:2;
    F.Programs.effect_roundtrip ~iters:2;
    F.Programs.effect_depth ~depth:3 ~iters:2;
    F.Programs.counter_effect ~upto:3;
    F.Programs.meander;
    F.Programs.one_shot_violation;
    F.Programs.cross_resume;
    F.Programs.suspended_requests ~n:2;
  ]

let redzone_agrees_on_builtins () =
  List.iter
    (fun p ->
      let c = F.Compile.compile p in
      match A.Redzone.audit ~red_zone:16 c with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "audit disagreed with the compiler: %s"
            (A.Diag.to_string d))
    audit_suite

let redzone_matches_compiler_metadata () =
  List.iter
    (fun p ->
      let c = F.Compile.compile p in
      Array.iter
        (fun (f : F.Compile.cfn) ->
          let r = A.Redzone.compute c f in
          Alcotest.(check bool)
            (f.F.Compile.fn_name ^ " leaf") f.F.Compile.is_leaf r.A.Redzone.c_leaf;
          Alcotest.(check int)
            (f.F.Compile.fn_name ^ " frame")
            f.F.Compile.frame_words r.A.Redzone.c_frame_words;
          Alcotest.(check int)
            (f.F.Compile.fn_name ^ " ostack")
            f.F.Compile.max_ostack r.A.Redzone.c_max_ostack)
        c.F.Compile.fns)
    audit_suite

let redzone_detects_injected_elision () =
  let c = F.Compile.compile (F.Programs.fib ~n:5) in
  let victim =
    match
      Array.to_list c.F.Compile.fns
      |> List.find_opt (fun (f : F.Compile.cfn) -> not f.F.Compile.is_leaf)
    with
    | Some f -> f
    | None -> Alcotest.fail "no non-leaf function in fib"
  in
  (* claim the recursive function is a small leaf: the elision rule
     would skip its overflow check *)
  let doctored =
    { victim with F.Compile.is_leaf = true; F.Compile.frame_words = 8 }
  in
  Alcotest.(check bool)
    "honest claim passes" true
    (A.Redzone.audit_fn ~red_zone:16 c victim = None);
  match A.Redzone.audit_fn ~red_zone:16 c doctored with
  | Some
      {
        A.Diag.kind = A.Diag.Redzone_unsound { computed_leaf; claimed_leaf; _ };
        verdict = A.Diag.Must;
        _;
      } ->
      Alcotest.(check bool) "computed non-leaf" false computed_leaf;
      Alcotest.(check bool) "claimed leaf" true claimed_leaf
  | Some d -> Alcotest.failf "wrong diagnostic: %s" (A.Diag.to_string d)
  | None -> Alcotest.fail "unsound elision not detected"

let tiny_frame_never_flagged () =
  (* over-reservation is safe: inflating the claimed frame must not
     produce a finding *)
  let c = F.Compile.compile (F.Programs.fib ~n:5) in
  Array.iter
    (fun (f : F.Compile.cfn) ->
      let inflated = { f with F.Compile.frame_words = 1000 } in
      Alcotest.(check bool)
        (f.F.Compile.fn_name ^ " inflated") true
        (A.Redzone.audit_fn ~red_zone:16 c inflated = None))
    c.F.Compile.fns

(* The macro suite's modeled inventories obey the same elision rule the
   audit recomputes (§5.2): Fn_meta.checked and Otss.needs_check agree
   on every shape class at every red zone. *)
let macro_inventory_agrees_with_otss () =
  List.iter
    (fun kind ->
      let is_leaf = kind <> M.Fn_meta.Nonleaf in
      let frame_words = M.Fn_meta.frame_words_of_kind kind in
      List.iter
        (fun rz ->
          Alcotest.(check bool)
            (Printf.sprintf "red zone %d" rz)
            (F.Otss.needs_check ~red_zone:rz ~is_leaf ~frame_words)
            (M.Fn_meta.checked ~red_zone:(Some rz) kind))
        [ 8; 16; 32; 64 ])
    [ M.Fn_meta.Leaf_small; M.Fn_meta.Leaf_mid; M.Fn_meta.Leaf_big;
      M.Fn_meta.Nonleaf ]

(* ------------------------------------------------------------------ *)
(* Frame metadata (max_ostack) unit tests. *)

let max_ostack_values () =
  let ostack p =
    let c = F.Compile.compile p in
    (Array.to_list c.F.Compile.fns
    |> List.find (fun (f : F.Compile.cfn) -> f.F.Compile.fn_name = "main"))
      .F.Compile.max_ostack
  in
  Alcotest.(check int) "constant" 1 (ostack (prog [ fn "main" [] (F.Ir.Int 7) ]));
  Alcotest.(check int) "nested binop" 3
    (ostack
       (prog
          [
            fn "main" []
              (F.Ir.Binop
                 ( F.Ir.Add,
                   F.Ir.Int 1,
                   F.Ir.Binop (F.Ir.Add, F.Ir.Int 2, F.Ir.Int 3) ));
          ]));
  (* a trap handler is entered at its recorded operand depth plus
     [payload; id] *)
  Alcotest.(check int) "trap handler entry" 4
    (ostack
       (prog
          [ fn "main" [] (F.Ir.Trywith (F.Ir.Int 1, [ ("A", "x", F.Ir.Var "x") ])) ]))

(* ------------------------------------------------------------------ *)
(* Printer injectivity (satellite of the round-trip fix): structurally
   distinct programs render distinctly. *)

let prop_expr_printer_injective =
  QCheck.Test.make ~name:"lowered programs render injectively" ~count:200
    QCheck.(pair (int_bound 5000) (int_bound 5000))
    (fun (s1, s2) ->
      let p1 = C.Fiber_backend.lower (C.Gen.program_of_seed s1)
      and p2 = C.Fiber_backend.lower (C.Gen.program_of_seed s2) in
      p1 = p2 || F.Ir.program_to_string p1 <> F.Ir.program_to_string p2)

let instr_printer_distinct_heads () =
  let samples =
    [
      F.Ir.Const 0; F.Ir.Load 0; F.Ir.Store 0; F.Ir.Dup; F.Ir.Pop;
      F.Ir.Bin F.Ir.Add; F.Ir.Jump 0; F.Ir.JumpIfNot 0; F.Ir.CallI 0;
      F.Ir.Ret; F.Ir.PushtrapI 0; F.Ir.PoptrapI; F.Ir.RaiseI 0;
      F.Ir.ReraiseI; F.Ir.PerformI 0; F.Ir.HandleI 0; F.Ir.ContinueI;
      F.Ir.DiscontinueI 0; F.Ir.ExtcallI (0, 0); F.Ir.Stop;
    ]
  in
  let strs = List.map F.Ir.instr_to_string samples in
  let sorted = List.sort_uniq compare strs in
  Alcotest.(check int)
    "every instruction constructor prints distinctly" (List.length samples)
    (List.length sorted)

(* ------------------------------------------------------------------ *)
(* In-test soundness fuzz: the campaign analyzes every generated
   program and holds its Safe/Must claims against all three backends. *)

let soundness_fuzz_smoke () =
  let stats =
    C.Fuzz.campaign ~seed:23 ~count:150 ~dwarf:false ~audit:false ~analyze:true
      ()
  in
  Alcotest.(check int) "all programs analyzed" 150 stats.C.Fuzz.analyzed;
  Alcotest.(check bool) "dispatches checked" true (stats.C.Fuzz.dispatch_checks > 0);
  Alcotest.(check int) "one bound table per program" 150 stats.C.Fuzz.bound_checks;
  match stats.C.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "soundness failure:\n%s" (C.Fuzz.failure_to_string f)

let suite =
  [
    test "corpus verdict table" corpus_verdict_table;
    test "checker catches unsound claims" checker_catches_unsound_claims;
    test "possibly-unhandled flagged" possibly_unhandled_flagged;
    test "effect-across-C-frame flagged" effect_across_c_frame_flagged;
    test "may-resume-twice flagged" may_resume_twice_flagged;
    test "may-leak flagged" may_leak_flagged;
    test "dead exn clause flagged" dead_exn_clause_flagged;
    test "clean programs have no findings" clean_programs_have_no_findings;
    test "diagnostics are deterministic" diagnostics_are_deterministic;
    test "red-zone audit agrees on built-ins" redzone_agrees_on_builtins;
    test "red-zone recomputation matches compiler" redzone_matches_compiler_metadata;
    test "red-zone audit detects injected elision" redzone_detects_injected_elision;
    test "over-reservation never flagged" tiny_frame_never_flagged;
    test "macro inventory agrees with otss" macro_inventory_agrees_with_otss;
    test "max_ostack unit values" max_ostack_values;
    QCheck_alcotest.to_alcotest prop_expr_printer_injective;
    test "instr printer distinct heads" instr_printer_distinct_heads;
    test "soundness fuzz smoke" soundness_fuzz_smoke;
  ]
