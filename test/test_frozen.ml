(* Frozen cost-counter accounting for the fiber machine.

   These values were captured from the pre-optimisation implementation
   (the PR-1 seed) and pin the paper-model accounting of Tables 1-2:
   the hot-path work (indexed handler dispatch, the address->fiber
   interval index, O(1) continuation capture, the O(1) stack cache) is
   an asymptotic fix only and must not change a single counter.  Newer
   event counters (addr_index_probe, stack_cache_miss) are deliberately
   absent here: the check below compares exactly the frozen names, so
   adding observability never breaks it, while any drift in the frozen
   values does. *)

module F = Retrofit_fiber
module C = Retrofit_util.Counter

let test name f = Alcotest.test_case name `Quick f

let programs =
  [
    ("fib15", (F.Programs.fib ~n:15, false));
    ("ack23", (F.Programs.ack ~m:2 ~n:3, false));
    ("tak", (F.Programs.tak ~x:12 ~y:8 ~z:4, false));
    ("motzkin10", (F.Programs.motzkin ~n:10, false));
    ("sudan", (F.Programs.sudan ~iters:3 ~n:2 ~x:2 ~y:1 (), false));
    ("exnval", (F.Programs.exnval ~iters:500, false));
    ("exnraise", (F.Programs.exnraise ~iters:500, false));
    ("extcall", (F.Programs.extcall ~iters:500, true));
    ("callback", (F.Programs.callback ~iters:500, true));
    ("meander", (F.Programs.meander, true));
    ("effect_roundtrip", (F.Programs.effect_roundtrip ~iters:100, true));
    ("counter_effect", (F.Programs.counter_effect ~upto:10, false));
    ("effect_depth", (F.Programs.effect_depth ~depth:5 ~iters:5, false));
    ("deep_recursion", (F.Programs.deep_recursion ~depth:5000, false));
    ("discontinue", (F.Programs.discontinue_cleanup, false));
    ("cross_resume", (F.Programs.cross_resume, false));
    ("effect_in_callback", (F.Programs.effect_in_callback, true));
    ("multishot_choice", (F.Programs.multishot_choice, false));
    ("nqueens5", (F.Programs.nqueens ~n:5, false));
  ]

(* The policy configs (seg/segcow-ms/res/res-ms) pin the alternative
   stack strategies the same way: any drift in their growth, check or
   cloning accounting shows up as a counter change here. *)
let config_of = function
  | "stock" -> F.Config.stock
  | "mc" -> F.Config.mc
  | "ms" -> F.Config.with_multishot true F.Config.mc
  | "seg" -> F.Config.with_policy F.Stack_policy.segmented F.Config.mc
  | "segcow-ms" ->
      F.Config.with_multishot true
        (F.Config.with_policy F.Stack_policy.segmented_cow F.Config.mc)
  | "res" -> F.Config.with_policy F.Stack_policy.large_reserve F.Config.mc
  | "res-ms" ->
      F.Config.with_multishot true
        (F.Config.with_policy F.Stack_policy.large_reserve F.Config.mc)
  | c -> Alcotest.failf "unknown config %s" c

let outcome_to_string = function
  | F.Machine.Done v -> Printf.sprintf "Done %d" v
  | F.Machine.Uncaught (l, v) -> Printf.sprintf "Uncaught %s %d" l v
  | F.Machine.Fatal m -> "Fatal " ^ m

(* (program/config, outcome, frozen counters) *)
let expected : (string * string * (string * int) list) list =
  [
    ( "fib15/stock",
      "Done 610",
      [ ("call", 1974); ("instructions", 28638); ("malloc", 1); ("ops", 20716); ("ret", 1974); ] );
    ( "fib15/mc",
      "Done 610",
      [ ("call", 1974); ("instructions", 32672); ("malloc", 2); ("ops", 20716); ("overflow_check", 1974); ("ret", 1974); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "fib15/ms",
      "Done 610",
      [ ("call", 1974); ("instructions", 32672); ("malloc", 2); ("ops", 20716); ("overflow_check", 1974); ("ret", 1974); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "ack23/stock",
      "Done 9",
      [ ("call", 45); ("instructions", 807); ("malloc", 1); ("ops", 601); ("ret", 45); ] );
    ( "ack23/mc",
      "Done 9",
      [ ("call", 45); ("instructions", 983); ("malloc", 2); ("ops", 601); ("overflow_check", 45); ("ret", 45); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "ack23/ms",
      "Done 9",
      [ ("call", 45); ("instructions", 983); ("malloc", 2); ("ops", 601); ("overflow_check", 45); ("ret", 45); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "tak/stock",
      "Done 5",
      [ ("call", 1734); ("instructions", 25592); ("malloc", 1); ("ops", 18630); ("ret", 1734); ] );
    ( "tak/mc",
      "Done 5",
      [ ("call", 1734); ("instructions", 29146); ("malloc", 2); ("ops", 18630); ("overflow_check", 1734); ("ret", 1734); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "tak/ms",
      "Done 5",
      [ ("call", 1734); ("instructions", 29146); ("malloc", 2); ("ops", 18630); ("overflow_check", 1734); ("ret", 1734); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "motzkin10/stock",
      "Done 2188",
      [ ("call", 7015); ("instructions", 110978); ("malloc", 1); ("ops", 82892); ("ret", 7015); ] );
    ( "motzkin10/mc",
      "Done 2188",
      [ ("call", 7015); ("instructions", 125221); ("malloc", 3); ("ops", 82892); ("overflow_check", 7015); ("ret", 7015); ("stack_grow", 2); ("words_copied", 123); ] );
    ( "motzkin10/ms",
      "Done 2188",
      [ ("call", 7015); ("instructions", 125221); ("malloc", 3); ("ops", 82892); ("overflow_check", 7015); ("ret", 7015); ("stack_grow", 2); ("words_copied", 123); ] );
    ( "sudan/stock",
      "Done 0",
      [ ("call", 28); ("instructions", 615); ("malloc", 1); ("ops", 477); ("ret", 28); ] );
    ( "sudan/mc",
      "Done 0",
      [ ("call", 28); ("instructions", 757); ("malloc", 2); ("ops", 477); ("overflow_check", 28); ("ret", 28); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "sudan/ms",
      "Done 0",
      [ ("call", 28); ("instructions", 757); ("malloc", 2); ("ops", 477); ("overflow_check", 28); ("ret", 28); ("stack_grow", 1); ("words_copied", 41); ] );
    ( "exnval/stock",
      "Done 0",
      [ ("call", 1); ("instructions", 7536); ("malloc", 1); ("ops", 6006); ("poptrap", 500); ("pushtrap", 500); ("ret", 1); ] );
    ( "exnval/mc",
      "Done 0",
      [ ("call", 1); ("check_elided", 1); ("instructions", 7536); ("malloc", 1); ("ops", 6006); ("poptrap", 500); ("pushtrap", 500); ("ret", 1); ] );
    ( "exnval/ms",
      "Done 0",
      [ ("call", 1); ("check_elided", 1); ("instructions", 7536); ("malloc", 1); ("ops", 6006); ("poptrap", 500); ("pushtrap", 500); ("ret", 1); ] );
    ( "exnraise/stock",
      "Done 0",
      [ ("call", 1); ("instructions", 11536); ("malloc", 1); ("ops", 9506); ("pushtrap", 500); ("raise", 500); ("ret", 1); ] );
    ( "exnraise/mc",
      "Done 0",
      [ ("call", 1); ("check_elided", 1); ("instructions", 11536); ("malloc", 1); ("ops", 9506); ("pushtrap", 500); ("raise", 500); ("ret", 1); ] );
    ( "exnraise/ms",
      "Done 0",
      [ ("call", 1); ("check_elided", 1); ("instructions", 11536); ("malloc", 1); ("ops", 9506); ("pushtrap", 500); ("raise", 500); ("ret", 1); ] );
    ( "extcall/stock",
      "Done 0",
      [ ("call", 1); ("extcall", 500); ("instructions", 12036); ("malloc", 1); ("ops", 5006); ("ret", 1); ] );
    ( "extcall/mc",
      "Done 0",
      [ ("call", 1); ("extcall", 500); ("instructions", 14538); ("malloc", 1); ("ops", 5006); ("overflow_check", 1); ("ret", 1); ] );
    ( "extcall/ms",
      "Done 0",
      [ ("call", 1); ("extcall", 500); ("instructions", 14538); ("malloc", 1); ("ops", 5006); ("overflow_check", 1); ("ret", 1); ] );
    ( "callback/stock",
      "Done 0",
      [ ("call", 501); ("callback", 500); ("extcall", 500); ("instructions", 19036); ("malloc", 1); ("ops", 6006); ("pushtrap", 500); ("ret", 501); ] );
    ( "callback/mc",
      "Done 0",
      [ ("call", 501); ("callback", 500); ("check_elided", 500); ("extcall", 500); ("instructions", 27538); ("malloc", 1); ("ops", 6006); ("overflow_check", 1); ("pushtrap", 500); ("ret", 501); ] );
    ( "callback/ms",
      "Done 0",
      [ ("call", 501); ("callback", 500); ("check_elided", 500); ("extcall", 500); ("instructions", 27538); ("malloc", 1); ("ops", 6006); ("overflow_check", 1); ("pushtrap", 500); ("ret", 501); ] );
    ( "meander/stock",
      "Done 42",
      [ ("call", 3); ("callback", 1); ("extcall", 1); ("instructions", 92); ("malloc", 1); ("ops", 23); ("pushtrap", 3); ("raise", 3); ("ret", 2); ] );
    ( "meander/mc",
      "Done 42",
      [ ("call", 3); ("callback", 1); ("check_elided", 1); ("extcall", 1); ("instructions", 113); ("malloc", 1); ("ops", 23); ("overflow_check", 2); ("pushtrap", 3); ("raise", 3); ("ret", 2); ] );
    ( "meander/ms",
      "Done 42",
      [ ("call", 3); ("callback", 1); ("check_elided", 1); ("extcall", 1); ("instructions", 113); ("malloc", 1); ("ops", 23); ("overflow_check", 2); ("pushtrap", 3); ("raise", 3); ("ret", 2); ] );
    ( "effect_roundtrip/mc",
      "Done 0",
      [ ("call", 301); ("check_elided", 100); ("fiber_alloc", 100); ("fiber_free", 100); ("fiber_return", 100); ("handle", 100); ("instructions", 7353); ("malloc", 2); ("ops", 1906); ("overflow_check", 201); ("perform", 100); ("resume", 100); ("ret", 301); ("stack_cache_hit", 99); ("switch", 400); ] );
    ( "effect_roundtrip/ms",
      "Done 0",
      [ ("call", 301); ("check_elided", 100); ("cont_copy", 100); ("fiber_alloc", 100); ("fiber_free", 100); ("fiber_return", 100); ("handle", 100); ("instructions", 13953); ("malloc", 102); ("ops", 1906); ("overflow_check", 201); ("perform", 100); ("resume", 100); ("ret", 301); ("stack_cache_hit", 99); ("switch", 400); ("words_copied", 4100); ] );
    ( "counter_effect/mc",
      "Done 55",
      [ ("call", 23); ("check_elided", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 714); ("malloc", 4); ("ops", 192); ("overflow_check", 22); ("perform", 10); ("resume", 10); ("ret", 23); ("stack_grow", 2); ("switch", 22); ("words_copied", 82); ] );
    ( "counter_effect/ms",
      "Done 55",
      [ ("call", 23); ("check_elided", 1); ("cont_copy", 10); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 1441); ("malloc", 13); ("ops", 192); ("overflow_check", 22); ("perform", 10); ("resume", 10); ("ret", 23); ("stack_cache_hit", 1); ("stack_grow", 2); ("switch", 22); ("words_copied", 574); ] );
    ( "effect_depth/mc",
      "Done 0",
      [ ("call", 71); ("check_elided", 30); ("fiber_alloc", 30); ("fiber_free", 30); ("fiber_return", 30); ("handle", 30); ("instructions", 1823); ("malloc", 7); ("ops", 426); ("overflow_check", 41); ("perform", 5); ("reperform", 25); ("resume", 5); ("ret", 71); ("stack_cache_hit", 24); ("switch", 70); ] );
    ( "effect_depth/ms",
      "Done 0",
      [ ("call", 71); ("check_elided", 30); ("cont_copy", 5); ("fiber_alloc", 30); ("fiber_free", 30); ("fiber_return", 30); ("handle", 30); ("instructions", 3803); ("malloc", 37); ("ops", 426); ("overflow_check", 41); ("perform", 5); ("reperform", 25); ("resume", 5); ("ret", 71); ("stack_cache_hit", 24); ("switch", 70); ("words_copied", 1230); ] );
    ( "deep_recursion/mc",
      "Done 5000",
      [ ("call", 5003); ("check_elided", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 95907); ("malloc", 10); ("ops", 55012); ("overflow_check", 5002); ("ret", 5003); ("stack_grow", 8); ("switch", 2); ("words_copied", 10455); ] );
    ( "deep_recursion/ms",
      "Done 5000",
      [ ("call", 5003); ("check_elided", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 95907); ("malloc", 10); ("ops", 55012); ("overflow_check", 5002); ("ret", 5003); ("stack_grow", 8); ("switch", 2); ("words_copied", 10455); ] );
    ( "discontinue/mc",
      "Done 42",
      [ ("call", 4); ("check_elided", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 129); ("malloc", 2); ("ops", 23); ("overflow_check", 3); ("perform", 1); ("pushtrap", 1); ("raise", 1); ("resume", 1); ("ret", 4); ("switch", 4); ] );
    ( "discontinue/ms",
      "Done 42",
      [ ("call", 4); ("check_elided", 1); ("cont_copy", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 195); ("malloc", 3); ("ops", 23); ("overflow_check", 3); ("perform", 1); ("pushtrap", 1); ("raise", 1); ("resume", 1); ("ret", 4); ("switch", 4); ("words_copied", 41); ] );
    ( "cross_resume/mc",
      "Done 42",
      [ ("call", 6); ("check_elided", 2); ("fiber_alloc", 2); ("fiber_free", 2); ("fiber_return", 2); ("handle", 2); ("instructions", 168); ("malloc", 3); ("ops", 19); ("overflow_check", 4); ("perform", 1); ("resume", 1); ("ret", 6); ("switch", 6); ] );
    ( "cross_resume/ms",
      "Done 42",
      [ ("call", 6); ("check_elided", 2); ("cont_copy", 1); ("fiber_alloc", 2); ("fiber_free", 2); ("fiber_return", 2); ("handle", 2); ("instructions", 234); ("malloc", 4); ("ops", 19); ("overflow_check", 4); ("perform", 1); ("resume", 1); ("ret", 6); ("switch", 6); ("words_copied", 41); ] );
    ( "effect_in_callback/mc",
      "Done 7",
      [ ("call", 3); ("callback", 1); ("extcall", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("handle", 1); ("instructions", 137); ("malloc", 2); ("ops", 16); ("overflow_check", 3); ("perform", 1); ("pushtrap", 2); ("raise", 2); ("ret", 1); ("switch", 2); ] );
    ( "effect_in_callback/ms",
      "Done 7",
      [ ("call", 3); ("callback", 1); ("extcall", 1); ("fiber_alloc", 1); ("fiber_free", 1); ("handle", 1); ("instructions", 137); ("malloc", 2); ("ops", 16); ("overflow_check", 3); ("perform", 1); ("pushtrap", 2); ("raise", 2); ("ret", 1); ("switch", 2); ] );
    ( "multishot_choice/ms",
      "Done 30",
      [ ("call", 5); ("check_elided", 2); ("cont_copy", 2); ("fiber_alloc", 1); ("fiber_free", 2); ("fiber_return", 2); ("handle", 1); ("instructions", 268); ("malloc", 3); ("ops", 22); ("overflow_check", 3); ("perform", 1); ("resume", 2); ("ret", 6); ("stack_cache_hit", 1); ("switch", 6); ("words_copied", 82); ] );
    ( "deep_recursion/seg",
      "Done 5000",
      [ ("call", 5003); ("chunk_commit", 157); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 86978); ("malloc", 2); ("ops", 55012); ("ret", 5003); ("segment_check", 5003); ("switch", 2); ] );
    ( "deep_recursion/res",
      "Done 5000",
      [ ("call", 5003); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 76528); ("malloc", 2); ("ops", 55012); ("page_commit", 40); ("page_fault", 40); ("ret", 5003); ("switch", 2); ] );
    ( "effect_roundtrip/seg",
      "Done 0",
      [ ("call", 301); ("fiber_alloc", 100); ("fiber_free", 100); ("fiber_return", 100); ("handle", 100); ("instructions", 7553); ("malloc", 2); ("ops", 1906); ("perform", 100); ("resume", 100); ("ret", 301); ("segment_check", 301); ("stack_cache_hit", 99); ("switch", 400); ] );
    ( "effect_roundtrip/res",
      "Done 0",
      [ ("call", 301); ("fiber_alloc", 100); ("fiber_free", 100); ("fiber_return", 100); ("handle", 100); ("instructions", 6951); ("malloc", 2); ("ops", 1906); ("perform", 100); ("resume", 100); ("ret", 301); ("stack_cache_hit", 99); ("switch", 400); ] );
    ( "counter_effect/seg",
      "Done 55",
      [ ("call", 23); ("chunk_commit", 2); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 568); ("malloc", 2); ("ops", 192); ("perform", 10); ("resume", 10); ("ret", 23); ("segment_check", 23); ("switch", 22); ] );
    ( "counter_effect/res",
      "Done 55",
      [ ("call", 23); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 570); ("malloc", 2); ("ops", 192); ("page_commit", 2); ("page_fault", 2); ("perform", 10); ("resume", 10); ("ret", 23); ("switch", 22); ] );
    ( "counter_effect/segcow-ms",
      "Done 55",
      [ ("call", 23); ("chunk_commit", 2); ("chunk_cow", 10); ("cont_copy", 10); ("cont_share", 10); ("cow_words", 410); ("fiber_alloc", 1); ("fiber_free", 1); ("fiber_return", 1); ("handle", 1); ("instructions", 1028); ("malloc", 2); ("ops", 192); ("perform", 10); ("resume", 10); ("ret", 23); ("segment_check", 23); ("switch", 22); ] );
    ( "multishot_choice/segcow-ms",
      "Done 30",
      [ ("call", 5); ("chunk_cow", 2); ("cont_copy", 2); ("cont_share", 2); ("cow_words", 82); ("fiber_alloc", 1); ("fiber_free", 2); ("fiber_return", 2); ("handle", 1); ("instructions", 247); ("malloc", 2); ("ops", 22); ("perform", 1); ("resume", 2); ("ret", 6); ("segment_check", 5); ("switch", 6); ] );
    ( "multishot_choice/res-ms",
      "Done 30",
      [ ("call", 5); ("cont_copy", 2); ("fiber_alloc", 1); ("fiber_free", 2); ("fiber_return", 2); ("handle", 1); ("instructions", 262); ("malloc", 3); ("ops", 22); ("perform", 1); ("resume", 2); ("ret", 6); ("stack_cache_hit", 1); ("switch", 6); ("words_copied", 82); ] );
    ( "nqueens5/segcow-ms",
      "Done 10",
      [ ("call", 5080); ("chunk_commit", 7); ("chunk_cow", 420); ("chunk_pool_hit", 6); ("cont_copy", 220); ("cont_share", 220); ("cow_words", 21820); ("fiber_alloc", 1); ("fiber_free", 177); ("fiber_return", 177); ("handle", 1); ("instructions", 116684); ("malloc", 2); ("ops", 56948); ("perform", 44); ("resume", 220); ("ret", 5908); ("segment_check", 5080); ("switch", 442); ] );
  ]

let check_entry (key, want_outcome, frozen) =
  let pname, cname =
    match String.split_on_char '/' key with
    | [ p; c ] -> (p, c)
    | _ -> Alcotest.failf "bad key %s" key
  in
  let p, needs_cfuns = List.assoc pname programs in
  let cfuns = if needs_cfuns then F.Programs.standard_cfuns else [] in
  let outcome, c = F.Machine.run ~cfuns (config_of cname) (F.Compile.compile p) in
  Alcotest.(check string) (key ^ " outcome") want_outcome (outcome_to_string outcome);
  List.iter
    (fun (counter, v) ->
      Alcotest.(check int) (Printf.sprintf "%s %s" key counter) v (C.get c counter))
    frozen

let frozen_counters () = List.iter check_entry expected

let suite = [ test "paper-model counters match the seed (Tables 1-2)" frozen_counters ]
