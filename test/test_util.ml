(* Stats, Histogram, Pqueue, Rng, Counter, Table, Bench argument checks *)
open Retrofit_util

let test name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-9))

(* ---------------- Stats ---------------- *)

let stats_basics () =
  feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  feq "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  feq "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  feq "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  feq "min" 1.0 (Stats.min [| 3.0; 1.0; 2.0 |]);
  feq "max" 3.0 (Stats.max [| 3.0; 1.0; 2.0 |]);
  feq "stddev singleton" 0.0 (Stats.stddev [| 5.0 |]);
  feq "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |])

let stats_percentile () =
  let xs = Array.init 101 float_of_int in
  feq "p0" 0.0 (Stats.percentile xs 0.0);
  feq "p50" 50.0 (Stats.percentile xs 50.0);
  feq "p100" 100.0 (Stats.percentile xs 100.0);
  feq "p25 interp" 1.5 (Stats.percentile [| 1.0; 2.0; 3.0 |] 25.0)

let stats_normalize () =
  let n = Stats.normalize ~baseline:[| 2.0; 4.0 |] [| 4.0; 2.0 |] in
  feq "n0" 2.0 n.(0);
  feq "n1" 0.5 n.(1);
  feq "pct" 50.0 (Stats.percent_diff ~baseline:2.0 3.0);
  feq "slowdown" 1.5 (Stats.slowdown ~baseline:2.0 3.0)

let stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "geomean nonpos"
    (Invalid_argument "Stats.geomean: non-positive entry") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let stats_nan_rejected () =
  Alcotest.check_raises "percentile NaN"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.percentile [| 2.0; Float.nan; 1.0 |] 50.0));
  Alcotest.check_raises "min NaN" (Invalid_argument "Stats.min: NaN input")
    (fun () -> ignore (Stats.min [| Float.nan |]));
  Alcotest.check_raises "max NaN" (Invalid_argument "Stats.max: NaN input")
    (fun () -> ignore (Stats.max [| 1.0; Float.nan |]));
  (* total order from Float.compare: infinities still sort correctly *)
  Alcotest.(check bool) "p0 with -inf" true
    (Stats.percentile [| 0.0; Float.neg_infinity; 1.0 |] 0.0 = Float.neg_infinity)

let bench_rejects_bad_args () =
  Alcotest.check_raises "negative warmups"
    (Invalid_argument "Bench.measure: warmups must be non-negative") (fun () ->
      ignore (Retrofit_harness.Bench.measure ~warmups:(-1) (fun () -> 0)));
  Alcotest.check_raises "zero runs"
    (Invalid_argument "Bench.measure: runs must be positive") (fun () ->
      ignore (Retrofit_harness.Bench.measure ~runs:0 (fun () -> 0)));
  (* zero warmups is legal: measurement proceeds *)
  let m = Retrofit_harness.Bench.measure ~warmups:0 ~runs:1 (fun () -> 0) in
  Alcotest.(check int) "one run" 1 (Array.length m.Retrofit_harness.Bench.runs_ns)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.001 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      Stats.geomean a <= Stats.mean a +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range 0. 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let a = Array.of_list xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

(* ---------------- Histogram ---------------- *)

let hist_basic () =
  let h = Histogram.create ~max_value:1_000_000 () in
  Histogram.record h 100;
  Histogram.record h 200;
  Histogram.record h 300;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check int) "min" 100 (Histogram.min_value h);
  Alcotest.(check int) "p100 = max" (Histogram.max_recorded h)
    (Histogram.value_at_percentile h 100.0)

let hist_precision () =
  let h = Histogram.create ~significant_figures:3 ~max_value:10_000_000 () in
  List.iter (Histogram.record h) [ 123_456; 500; 9_999_999 ];
  let p100 = Histogram.value_at_percentile h 100.0 in
  let err = abs (p100 - 9_999_999) in
  Alcotest.(check bool) "within 0.1%" true (float_of_int err /. 9_999_999. < 0.001)

let hist_saturation () =
  let h = Histogram.create ~max_value:1000 () in
  Histogram.record h 5000;
  Alcotest.(check int) "saturated" 1 (Histogram.saturated h);
  Alcotest.(check int) "count" 1 (Histogram.count h)

let hist_merge () =
  let a = Histogram.create ~max_value:10_000 () in
  let b = Histogram.create ~max_value:10_000 () in
  Histogram.record a 10;
  Histogram.record b 1000;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check int) "min" 10 (Histogram.min_value a);
  Alcotest.(check bool) "max ge" true (Histogram.max_recorded a >= 1000)

let hist_of_samples xs =
  let h = Histogram.create ~max_value:100_000 () in
  List.iter (Histogram.record h) xs;
  h

(* merge is a pure pairwise sum: total count and every bucket add up,
   and neither input is disturbed *)
let prop_hist_merge_sums =
  QCheck.Test.make ~name:"histogram merge preserves counts and buckets"
    ~count:200
    QCheck.(pair (list (int_range 1 200_000)) (list (int_range 1 200_000)))
    (fun (xs, ys) ->
      let a = hist_of_samples xs and b = hist_of_samples ys in
      let ca = Histogram.count a and cb = Histogram.count b in
      let sa = Histogram.saturated a and sb = Histogram.saturated b in
      let ba = Histogram.bucket_counts a and bb = Histogram.bucket_counts b in
      let m = Histogram.merge a b in
      Histogram.count m = ca + cb
      && Histogram.saturated m = sa + sb
      && Histogram.bucket_counts m
         = Array.init (Array.length ba) (fun i -> ba.(i) + bb.(i))
      (* inputs untouched *)
      && Histogram.count a = ca
      && Histogram.count b = cb
      && Histogram.bucket_counts a = ba
      && Histogram.bucket_counts b = bb)

let prop_hist_add_hist_matches_merge =
  QCheck.Test.make ~name:"add_hist mutates dst to the merge" ~count:200
    QCheck.(pair (list (int_range 1 200_000)) (list (int_range 1 200_000)))
    (fun (xs, ys) ->
      let a = hist_of_samples xs and b = hist_of_samples ys in
      let m = Histogram.merge a b in
      Histogram.add_hist ~dst:a b;
      Histogram.count a = Histogram.count m
      && Histogram.saturated a = Histogram.saturated m
      && Histogram.bucket_counts a = Histogram.bucket_counts m
      && Histogram.min_value a = Histogram.min_value m
      && Histogram.max_recorded a = Histogram.max_recorded m)

let prop_hist_percentile_bounds =
  QCheck.Test.make ~name:"histogram p50 within recorded range" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 100_000))
    (fun xs ->
      let h = Histogram.create ~max_value:200_000 () in
      List.iter (Histogram.record h) xs;
      let p50 = Histogram.value_at_percentile h 50.0 in
      let lo = List.fold_left min (List.hd xs) xs in
      let hi = List.fold_left max (List.hd xs) xs in
      (* representation error is at most 0.1% *)
      float_of_int p50 >= float_of_int lo *. 0.998
      && float_of_int p50 <= float_of_int hi *. 1.002)

let prop_hist_mean_close =
  QCheck.Test.make ~name:"histogram mean close to true mean" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 1_000_000))
    (fun xs ->
      let h = Histogram.create ~max_value:2_000_000 () in
      List.iter (Histogram.record h) xs;
      let true_mean =
        float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
      in
      Float.abs (Histogram.mean h -. true_mean) /. true_mean < 0.002)

(* ---------------- Pqueue ---------------- *)

let pq_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q ~priority:p v) [ (3, "c"); (1, "a"); (2, "b") ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let pq_fifo_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i v -> Pqueue.add q ~priority:5 (i, v)) [ "x"; "y"; "z" ];
  let pop () = match Pqueue.pop q with Some (_, (_, v)) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order" [ "x"; "y"; "z" ]
    [ first; second; third ]

let pq_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "peek empty" true (Pqueue.peek q = None);
  Pqueue.add q ~priority:7 "v";
  Alcotest.(check bool) "peek" true (Pqueue.peek q = Some (7, "v"));
  Alcotest.(check int) "length unchanged" 1 (Pqueue.length q)

let prop_pq_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun ps ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q ~priority:p p) ps;
      let rec drain acc =
        match Pqueue.pop q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare ps)

(* Evloop same-instant callback ordering depends on equal-priority
   entries draining in insertion order; check it under heavy ties by
   drawing priorities from a tiny range. *)
let prop_pq_fifo_within_priority =
  QCheck.Test.make ~name:"pqueue FIFO among equal priorities" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 4))
    (fun ps ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.add q ~priority:p (p, i)) ps;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (_, pv) -> drain (pv :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      (* popping must yield exactly the stable sort by priority: equal
         priorities in insertion-index order *)
      out
      = List.stable_sort
          (fun (p1, _) (p2, _) -> compare p1 p2)
          (List.mapi (fun i p -> (p, i)) ps))

(* ---------------- Rng ---------------- *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 100 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let rng_exponential_positive () =
  let r = Rng.create 11 in
  let sum = ref 0.0 in
  for _ = 1 to 10_000 do
    let x = Rng.exponential r ~mean:5.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. 10_000.0 in
  Alcotest.(check bool) "mean approx 5" true (mean > 4.5 && mean < 5.5)

let rng_shuffle_permutes () =
  let r = Rng.create 13 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  Alcotest.(check (list int)) "same elements" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list arr))

(* ---------------- Counter ---------------- *)

let counter_basics () =
  let c = Counter.create () in
  Counter.incr c "a";
  Counter.add c "a" 4;
  Alcotest.(check int) "a" 5 (Counter.get c "a");
  Alcotest.(check int) "missing" 0 (Counter.get c "zzz");
  Alcotest.(check (list (pair string int))) "to_list" [ ("a", 5) ] (Counter.to_list c);
  let d = Counter.create () in
  Counter.add d "a" 2;
  Counter.add d "b" 1;
  Alcotest.(check (list (pair string int))) "diff" [ ("a", 3); ("b", -1) ]
    (Counter.diff c d)

(* ---------------- Table ---------------- *)

let table_render () =
  let s = Table.render ~header:[ "x"; "long" ] [ [ "aa"; "b" ]; [ "c" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "x");
  Alcotest.(check bool) "pads short rows" true
    (List.length (String.split_on_char '\n' s) >= 4)

(* ---------------- Rng properties (conformance satellite) ---------------- *)

let prop_rng_int_in_bound =
  QCheck.Test.make ~name:"rng int respects arbitrary bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let rng_int_one_is_zero () =
  (* bound = 1 must return 0 immediately; a rejection-sampling loop that
     draws until [v < bound] would spin forever on a mask of 0 bits
     handled wrongly. *)
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "int 1" 0 (Rng.int r 1)
  done

let rng_uniformity_smoke () =
  (* Not a statistical test, a sanity smoke: 10k draws over 10 buckets
     should put every bucket within 30% of the expected 1000. *)
  let r = Rng.create 17 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d" i n)
        true
        (n > 700 && n < 1300))
    buckets

let prop_rng_float_in_bound =
  QCheck.Test.make ~name:"rng float in [0, bound)" ~count:300
    QCheck.(pair small_int (float_range 0.001 1e9))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let f = Rng.float r bound in
        if not (f >= 0.0 && f < bound) then ok := false
      done;
      !ok)

let rng_split_independent () =
  (* Children of equal-seeded parents agree with each other; a child's
     stream differs from its parent's continuation (otherwise split
     would just alias the parent). *)
  let p1 = Rng.create 23 and p2 = Rng.create 23 in
  let c1 = Rng.split p1 and c2 = Rng.split p2 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "children deterministic" (Rng.bits64 c1) (Rng.bits64 c2)
  done;
  let p = Rng.create 29 in
  let c = Rng.split p in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 p = Rng.bits64 c then incr same
  done;
  Alcotest.(check bool) "child stream differs from parent" true (!same < 4)

(* ------------- Histogram properties (conformance satellite) ------------- *)

let prop_hist_index_roundtrip =
  QCheck.Test.make ~name:"histogram counts_index/value_from_index round-trip"
    ~count:1000
    QCheck.(pair (int_range 1 5) (int_range 0 100_000_000))
    (fun (sig_figs, v) ->
      let h = Histogram.create ~significant_figures:sig_figs ~max_value:100_000_000 () in
      let i = Histogram.counts_index h v in
      let d = Histogram.value_from_index h i in
      (* decoded value is the bucket lower bound: at most v, within the
         advertised relative error, and decoding is a fixed point *)
      d <= v
      && float_of_int (v - d)
         <= (10.0 ** float_of_int (-sig_figs)) *. float_of_int (max v 1)
      && Histogram.counts_index h d = i)

let prop_hist_index_monotone =
  QCheck.Test.make ~name:"histogram counts_index monotone" ~count:500
    QCheck.(pair (int_range 0 10_000_000) (int_range 0 10_000_000))
    (fun (a, b) ->
      let h = Histogram.create ~max_value:10_000_000 () in
      let lo = min a b and hi = max a b in
      Histogram.counts_index h lo <= Histogram.counts_index h hi)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentile monotone in p" ~count:200
    QCheck.(pair
              (list_of_size (Gen.int_range 1 40) (int_range 0 1_000_000))
              (pair (float_range 0.01 100.0) (float_range 0.01 100.0)))
    (fun (xs, (p1, p2)) ->
      let h = Histogram.create ~max_value:1_000_000 () in
      List.iter (Histogram.record h) xs;
      let lo = min p1 p2 and hi = max p1 p2 in
      Histogram.value_at_percentile h lo <= Histogram.value_at_percentile h hi)

let hist_saturation_boundary () =
  let h = Histogram.create ~max_value:1000 () in
  Histogram.record h 1000;
  Alcotest.(check int) "max_value itself not saturated" 0 (Histogram.saturated h);
  Histogram.record h 1001;
  Alcotest.(check int) "max_value+1 saturated" 1 (Histogram.saturated h);
  Alcotest.(check int) "both counted" 2 (Histogram.count h);
  Alcotest.(check bool) "clamped to max_value" true (Histogram.max_recorded h <= 1000)

let table_kv_and_chart () =
  let kv = Table.render_kv [ ("key", "value"); ("k2", "v2") ] in
  Alcotest.(check bool) "kv" true (String.length kv > 0);
  let chart = Table.bar_chart [ ("a", 0.5); ("b", 1.5) ] in
  Alcotest.(check bool) "chart has bars" true (String.contains chart '#');
  Alcotest.(check bool) "chart has baseline" true (String.contains chart '|')

let suite =
  [
    test "stats basics" stats_basics;
    test "stats percentile" stats_percentile;
    test "stats normalize" stats_normalize;
    test "stats errors" stats_errors;
    test "stats reject NaN" stats_nan_rejected;
    test "bench rejects bad warmups/runs" bench_rejects_bad_args;
    QCheck_alcotest.to_alcotest prop_geomean_le_mean;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    test "histogram basics" hist_basic;
    test "histogram precision" hist_precision;
    test "histogram saturation" hist_saturation;
    test "histogram merge" hist_merge;
    QCheck_alcotest.to_alcotest prop_hist_merge_sums;
    QCheck_alcotest.to_alcotest prop_hist_add_hist_matches_merge;
    QCheck_alcotest.to_alcotest prop_hist_percentile_bounds;
    QCheck_alcotest.to_alcotest prop_hist_mean_close;
    test "pqueue order" pq_order;
    test "pqueue fifo ties" pq_fifo_ties;
    test "pqueue peek" pq_peek;
    QCheck_alcotest.to_alcotest prop_pq_sorted;
    QCheck_alcotest.to_alcotest prop_pq_fifo_within_priority;
    test "rng deterministic" rng_deterministic;
    test "rng bounds" rng_bounds;
    test "rng exponential" rng_exponential_positive;
    test "rng shuffle" rng_shuffle_permutes;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bound;
    test "rng int 1 is 0" rng_int_one_is_zero;
    test "rng uniformity smoke" rng_uniformity_smoke;
    QCheck_alcotest.to_alcotest prop_rng_float_in_bound;
    test "rng split independence" rng_split_independent;
    QCheck_alcotest.to_alcotest prop_hist_index_roundtrip;
    QCheck_alcotest.to_alcotest prop_hist_index_monotone;
    QCheck_alcotest.to_alcotest prop_hist_percentile_monotone;
    test "histogram saturation boundary" hist_saturation_boundary;
    test "counter basics" counter_basics;
    test "table render" table_render;
    test "table kv and chart" table_kv_and_chart;
  ]
