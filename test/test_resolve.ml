(* Handler resolution and cost bounds: classification and shadowing
   unit cases, the static-to-runtime identity maps, dynamic dispatch
   agreement on the built-ins, measured-counters-vs-static-bounds under
   all four stack policies, the corpus × policy soundness matrix, the
   checker's ability to catch injected violations, diagnostic dedup and
   file:line witness rendering, and the campaign's resolution-census
   metrics. *)

module C = Retrofit_conformance
module A = Retrofit_analysis
module F = Retrofit_fiber
module Counter = Retrofit_util.Counter
module Metrics = Retrofit_metrics.Metrics
module IS = Set.Make (Int)

let test name f = Alcotest.test_case name `Quick f

(* Same table as `retrofit lint`. *)
let builtin_cfun_model = function
  | "c_id" | "list_pending" -> A.Cfg.Pure
  | "c_cb" -> A.Cfg.Calls_back "ocaml_id"
  | "ocaml_to_c" -> A.Cfg.Calls_back "c_to_ocaml"
  | _ -> A.Cfg.Opaque

let analyze p = A.Analyze.analyze ~cfun_model:builtin_cfun_model p

let fn name params body =
  { F.Ir.fn_name = name; F.Ir.params = params; F.Ir.body = body }

let prog fns = { F.Ir.fns; F.Ir.main = "main" }

let handler_of label body_fn =
  F.Ir.Handle
    {
      F.Ir.body_fn;
      F.Ir.body_args = [];
      F.Ir.retc = "hret";
      F.Ir.exncs = [];
      F.Ir.effcs = [ (label, "heff") ];
    }

let perform_helpers =
  [
    fn "p" [] (F.Ir.Perform ("E", F.Ir.Int 0));
    fn "hret" [ "x" ] (F.Ir.Var "x");
    fn "heff" [ "v"; "k" ] (F.Ir.Continue (F.Ir.Var "k", F.Ir.Var "v"));
  ]

(* [n] distinct handle specs, all installing a handler for E around the
   same perform site. *)
let fanout_prog n =
  let wrappers =
    List.init n (fun i -> fn (Printf.sprintf "w%d" i) [] (handler_of "E" "p"))
  in
  let body =
    List.fold_left
      (fun acc i -> F.Ir.Seq (acc, F.Ir.Call (Printf.sprintf "w%d" i, [])))
      (F.Ir.Call ("w0", []))
      (List.init (n - 1) (fun i -> i + 1))
  in
  prog (perform_helpers @ wrappers @ [ fn "main" [] body ])

let site_of_fn r name =
  match A.Resolve.sites_of r.A.Analyze.resolve name with
  | [| s |] -> s
  | a -> Alcotest.failf "%s: expected one perform site, got %d" name (Array.length a)

(* ------------------------------------------------------------------ *)
(* Classification and shadowing. *)

let classification_by_fanout () =
  let klass n =
    let r = analyze (fanout_prog n) in
    let s = site_of_fn r "p" in
    Alcotest.(check bool) "no boundary" false (s.A.Resolve.r_top || s.A.Resolve.r_via_c);
    Alcotest.(check int) "candidate count" n (IS.cardinal s.A.Resolve.r_cands);
    A.Resolve.klass_to_string s.A.Resolve.r_class
  in
  Alcotest.(check string) "1 outcome is mono" "mono" (klass 1);
  Alcotest.(check string) "2 outcomes are poly" "poly" (klass 2);
  Alcotest.(check string) "4 outcomes are poly" "poly" (klass 4);
  Alcotest.(check string) "5 outcomes are mega" "mega" (klass 5);
  (* and only the megamorphic site is a diagnostic *)
  let diags n = A.Resolve.diagnostics (analyze (fanout_prog n)).A.Analyze.resolve in
  Alcotest.(check int) "poly not flagged" 0 (List.length (diags 4));
  match diags 5 with
  | [ { A.Diag.kind = A.Diag.Megamorphic_dispatch { effect_name = "E"; outcomes = 5 };
        verdict = A.Diag.May; _ } ] -> ()
  | l -> Alcotest.failf "expected one megamorphic May finding, got %d" (List.length l)

let nearest_handler_shadows () =
  (* main installs an (unreachable) outer handler for E; mid installs
     the inner one the perform actually reaches *)
  let p =
    prog
      (perform_helpers
      @ [
          fn "heff2" [ "v"; "k" ] (F.Ir.Continue (F.Ir.Var "k", F.Ir.Var "v"));
          fn "mid" [] (handler_of "E" "p");
          fn "main" []
            (F.Ir.Handle
               {
                 F.Ir.body_fn = "mid";
                 F.Ir.body_args = [];
                 F.Ir.retc = "hret";
                 F.Ir.exncs = [];
                 F.Ir.effcs = [ ("E", "heff2") ];
               });
        ])
  in
  let r = analyze p in
  let s = site_of_fn r "p" in
  Alcotest.(check string) "mono under nesting" "mono"
    (A.Resolve.klass_to_string s.A.Resolve.r_class);
  Alcotest.(check bool) "no boundary" false (s.A.Resolve.r_top || s.A.Resolve.r_via_c);
  let printed = A.Resolve.site_to_string r.A.Analyze.resolve s in
  Alcotest.(check bool)
    (Printf.sprintf "candidate is the inner spec (%s)" printed)
    true
    (let sub = "in mid" in
     let rec mem i =
       i + String.length sub <= String.length printed
       && (String.sub printed i (String.length sub) = sub || mem (i + 1))
     in
     mem 0)

let boundary_flags_on_builtins () =
  let r = analyze F.Programs.unhandled_effect in
  let s = site_of_fn r "main" in
  Alcotest.(check bool) "unhandled_effect is +toplevel" true s.A.Resolve.r_top;
  let r = analyze F.Programs.effect_in_callback in
  let s = site_of_fn r "c_to_ocaml" in
  Alcotest.(check bool) "effect_in_callback is +via-c" true s.A.Resolve.r_via_c

(* ------------------------------------------------------------------ *)
(* Static-to-runtime identity maps. *)

let rt_suite =
  [
    ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:3);
    ("effect_depth", F.Programs.effect_depth ~depth:3 ~iters:2);
    ("counter_effect", F.Programs.counter_effect ~upto:4);
    ("cross_resume", F.Programs.cross_resume);
    ("one_shot_violation", F.Programs.one_shot_violation);
    ("discontinue_cleanup", F.Programs.discontinue_cleanup);
    ("unhandled_effect", F.Programs.unhandled_effect);
    ("poly2", fanout_prog 2);
    ("mega5", fanout_prog 5);
  ]

let runtime_map_is_total_and_inverse () =
  List.iter
    (fun (name, p) ->
      let r = analyze p in
      let rt = A.Resolve.runtime_map r.A.Analyze.resolve r.A.Analyze.compiled in
      let sites = A.Resolve.all_sites r.A.Analyze.resolve in
      (* every statically enumerated site owns exactly one PerformI pc *)
      List.iter
        (fun (s : A.Resolve.site) ->
          let owners =
            Hashtbl.fold
              (fun _ s' n -> if s' == s then n + 1 else n)
              rt.A.Resolve.rt_site_of_pc 0
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s#%d mapped once" name s.A.Resolve.r_fn
               s.A.Resolve.r_idx)
            1 owners)
        sites;
      (* spec<->handle maps are mutually inverse where defined *)
      Array.iteri
        (fun h sp ->
          if sp >= 0 then
            Alcotest.(check int)
              (Printf.sprintf "%s: handle %d round-trips" name h)
              h
              rt.A.Resolve.rt_handle_of_spec.(sp))
        rt.A.Resolve.rt_spec_of_handle)
    rt_suite

(* ------------------------------------------------------------------ *)
(* Dynamic agreement: every observed dispatch lands in the candidate
   set; handler-less boundaries only at flagged sites. *)

let observe ?(config = F.Config.mc) (r : A.Analyze.result) =
  let rt = A.Resolve.runtime_map r.A.Analyze.resolve r.A.Analyze.compiled in
  let obs = ref [] in
  let on_perform ~site ~eff:_ ~handler = obs := (site, handler) :: !obs in
  let _outcome, counters = F.Machine.run ~on_perform config r.A.Analyze.compiled in
  (rt, List.rev !obs, counters)

let check_obs name rt obs =
  List.iter
    (fun (pc, handler) ->
      match Hashtbl.find_opt rt.A.Resolve.rt_site_of_pc pc with
      | None -> Alcotest.failf "%s: perform at unmapped pc %d" name pc
      | Some s ->
          if handler = -1 then
            Alcotest.(check bool)
              (Printf.sprintf "%s: boundary at flagged site" name)
              true
              (s.A.Resolve.r_top || s.A.Resolve.r_via_c)
          else
            let sp = rt.A.Resolve.rt_spec_of_handle.(handler) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: spec#%d in candidates of %s#%d" name sp
                 s.A.Resolve.r_fn s.A.Resolve.r_idx)
              true
              (sp >= 0 && IS.mem sp s.A.Resolve.r_cands))
    obs

let dispatch_agreement_on_builtins () =
  let total = ref 0 in
  List.iter
    (fun (name, p) ->
      let r = analyze p in
      let rt, obs, _ = observe r in
      total := !total + List.length obs;
      check_obs name rt obs)
    rt_suite;
  (* the suite actually exercises dispatch *)
  Alcotest.(check bool) "observed performs" true (!total > 10)

let dispatch_agreement_multishot () =
  let config = F.Config.with_multishot true F.Config.mc in
  List.iter
    (fun (name, p) ->
      let r = analyze p in
      let rt, obs, _ = observe ~config r in
      check_obs (name ^ "/ms") rt obs)
    [
      ("multishot_choice", F.Programs.multishot_choice);
      ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:3);
      ("one_shot_violation", F.Programs.one_shot_violation);
    ]

(* ------------------------------------------------------------------ *)
(* Measured counters never exceed their finite static bounds, under
   every stack policy. *)

let bounds_hold_on_builtins () =
  let programs =
    [
      ("fib", F.Programs.fib ~n:5);
      ("exnraise", F.Programs.exnraise ~iters:2);
      ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:3);
      ("effect_depth", F.Programs.effect_depth ~depth:3 ~iters:2);
      ("counter_effect", F.Programs.counter_effect ~upto:4);
      ("cross_resume", F.Programs.cross_resume);
      ("one_shot_violation", F.Programs.one_shot_violation);
      ("discontinue_cleanup", F.Programs.discontinue_cleanup);
      ("poly2", fanout_prog 2);
    ]
  in
  let finite_checked = ref 0 in
  List.iter
    (fun (name, p) ->
      let r = analyze p in
      List.iter
        (fun (pname, policy) ->
          let config = F.Config.with_policy policy F.Config.mc in
          let _rt, _obs, counters = observe ~config r in
          List.iter
            (fun (cname, b) ->
              match A.Costbound.finite b with
              | None -> ()
              | Some limit ->
                  incr finite_checked;
                  let v = Counter.get counters cname in
                  if v > limit then
                    Alcotest.failf "%s under %s: %s measured %d > bound %d" name
                      pname cname v limit)
            (A.Costbound.counter_bounds r.A.Analyze.cost ~policy ~multishot:false
               ~red_zone:F.Config.mc.F.Config.red_zone))
        F.Stack_policy.all)
    programs;
  Alcotest.(check bool) "finite bounds were actually checked" true
    (!finite_checked > 100)

let costbound_unit_values () =
  let loop =
    prog
      [
        fn "leaf" [] (F.Ir.Int 1);
        fn "main" [] (F.Ir.Repeat (F.Ir.Int 3, F.Ir.Call ("leaf", [])));
      ]
  in
  let r = analyze loop in
  (match A.Costbound.inv r.A.Analyze.cost "leaf" with
  | A.Costbound.Fin n ->
      if n < 3 || n > 10 then
        Alcotest.failf "leaf invocation bound %d not in [3,10]" n
  | A.Costbound.Inf -> Alcotest.fail "constant loop widened to inf");
  let fib = analyze (F.Programs.fib ~n:5) in
  (match A.Costbound.inv fib.A.Analyze.cost "fib" with
  | A.Costbound.Inf -> ()
  | A.Costbound.Fin n -> Alcotest.failf "recursive fib claimed finite inv %d" n);
  let t = A.Costbound.totals fib.A.Analyze.cost in
  Alcotest.(check string) "fib performs bound" "0"
    (A.Costbound.bound_to_string t.A.Costbound.t_performs);
  Alcotest.(check string) "fib calls unbounded" "inf"
    (A.Costbound.bound_to_string t.A.Costbound.t_calls)

(* ------------------------------------------------------------------ *)
(* Satellite: the 10-entry corpus under all four stack policies — the
   static verdict table is policy-invariant, no policy's observed
   outcome, dispatch stream or counter table contradicts the claims. *)

let corpus_policy_matrix () =
  List.iter
    (fun (e : C.Corpus.entry) ->
      let c = C.Static.analyze e.C.Corpus.program in
      let vu, vo = C.Static.verdicts ~one_shot:true c in
      let rt = C.Static.runtime_map c in
      let default_outcome = ref None in
      List.iter
        (fun (pname, policy) ->
          let config = F.Config.with_policy policy F.Config.mc in
          let obs = ref [] in
          let fr =
            C.Fiber_backend.run ~config
              ~on_perform:(fun ~site ~eff:_ ~handler ->
                obs := (site, handler) :: !obs)
              e.C.Corpus.program
          in
          let o = fr.C.Fiber_backend.outcome in
          (match !default_outcome with
          | None -> default_outcome := Some o
          | Some _ -> ());
          (* a policy-side Stack_overflow is reservation exhaustion, not
             a verdict the analyzer speaks about (mirrors the campaign's
             skip rule) *)
          let skip =
            match o with
            | C.Outcome.Exn ("Stack_overflow", _) ->
                Some o <> !default_outcome
            | _ -> false
          in
          if not skip then begin
            (match C.Static.contradiction ~one_shot:true c o with
            | Some msg ->
                Alcotest.failf "%s under %s: %s" e.C.Corpus.name pname msg
            | None -> ());
            (match C.Static.dispatch_contradiction c rt (List.rev !obs) with
            | Some msg ->
                Alcotest.failf "%s under %s: %s" e.C.Corpus.name pname msg
            | None -> ());
            (match
               C.Static.bound_contradiction c ~policy ~multishot:false
                 fr.C.Fiber_backend.counters
             with
            | Some msg ->
                Alcotest.failf "%s under %s: %s" e.C.Corpus.name pname msg
            | None -> ())
          end;
          (* the claims are static: identical under every policy *)
          let vu', vo' = C.Static.verdicts ~one_shot:true c in
          Alcotest.(check string)
            (e.C.Corpus.name ^ " unhandled invariant under " ^ pname)
            (A.Diag.verdict_to_string vu)
            (A.Diag.verdict_to_string vu');
          Alcotest.(check string)
            (e.C.Corpus.name ^ " one-shot invariant under " ^ pname)
            (A.Diag.verdict_to_string vo)
            (A.Diag.verdict_to_string vo'))
        F.Stack_policy.all)
    C.Corpus.entries

(* ------------------------------------------------------------------ *)
(* The checkers must catch injected violations in both directions. *)

let checker_catches_injected_violations () =
  (* a corpus entry with at least one non-boundary site and one finite
     counter bound *)
  let found_site = ref false and found_bound = ref false in
  List.iter
    (fun (e : C.Corpus.entry) ->
      let c = C.Static.analyze e.C.Corpus.program in
      let rt = C.Static.runtime_map c in
      (* honest run first: no contradiction *)
      let fr = C.Fiber_backend.run e.C.Corpus.program in
      (match fr.C.Fiber_backend.outcome with
      | C.Outcome.Model_error _ -> ()
      | _ -> (
          match
            C.Static.bound_contradiction c ~policy:(snd (List.hd F.Stack_policy.all))
              ~multishot:false fr.C.Fiber_backend.counters
          with
          | Some msg -> Alcotest.failf "%s: honest run flagged: %s" e.C.Corpus.name msg
          | None -> ()));
      (* a handler-less boundary at a handlers-only site must be caught *)
      Hashtbl.iter
        (fun pc (s : A.Resolve.site) ->
          if (not !found_site) && (not s.A.Resolve.r_top) && not s.A.Resolve.r_via_c
          then begin
            found_site := true;
            (match C.Static.dispatch_contradiction c rt [ (pc, -1) ] with
            | Some _ -> ()
            | None ->
                Alcotest.failf "%s: injected boundary dispatch not caught"
                  e.C.Corpus.name);
            (* and a perform at a pc the analysis never mapped *)
            match C.Static.dispatch_contradiction c rt [ (max_int, 0) ] with
            | Some _ -> ()
            | None -> Alcotest.fail "unmapped pc not caught"
          end)
        rt.A.Resolve.rt_site_of_pc;
      (* an inflated counter above a finite bound must be caught *)
      if not !found_bound then begin
        let policy = snd (List.hd F.Stack_policy.all) in
        let bounds =
          C.Static.bound_contradiction c ~policy ~multishot:false
        in
        let counters = Counter.create () in
        match
          List.find_opt
            (fun (_, b) -> A.Costbound.finite b <> None)
            (A.Costbound.counter_bounds
               c.C.Static.result.A.Analyze.cost ~policy ~multishot:false
               ~red_zone:16)
        with
        | None -> ()
        | Some (cname, b) ->
            found_bound := true;
            let limit = Option.get (A.Costbound.finite b) in
            Counter.add counters cname (limit + 1);
            (match bounds counters with
            | Some _ -> ()
            | None ->
                Alcotest.failf "%s: counter %s over bound %d not caught"
                  e.C.Corpus.name cname limit)
      end)
    C.Corpus.entries;
  Alcotest.(check bool) "a non-boundary site existed" true !found_site;
  Alcotest.(check bool) "a finite bound existed" true !found_bound

(* ------------------------------------------------------------------ *)
(* Diagnostic dedup and file:line witness rendering. *)

let dedup_collapses_witness_paths () =
  let d path =
    {
      A.Diag.kind = A.Diag.Possibly_unhandled { effect_name = "E" };
      A.Diag.verdict = A.Diag.May;
      A.Diag.fn = "f";
      A.Diag.path;
      A.Diag.site = "(perform E (int 0))";
    }
  in
  (match A.Diag.dedup [ d [ "main"; "a"; "f" ]; d [ "main"; "f" ]; d [ "main"; "b"; "f" ] ] with
  | [ one ] ->
      Alcotest.(check (list string))
        "shortest witness kept" [ "main"; "f" ] one.A.Diag.path
  | l -> Alcotest.failf "expected one finding after dedup, got %d" (List.length l));
  (* different sites do not collapse *)
  let d2 = { (d [ "main" ]) with A.Diag.site = "(perform E (int 1))" } in
  Alcotest.(check int) "distinct sites kept" 2
    (List.length (A.Diag.dedup [ d [ "main" ]; d2 ]))

let locator_renders_file_lines () =
  let p =
    prog
      [
        fn "aux" [ "x" ] (F.Ir.Var "x");
        fn "main" [] (F.Ir.Call ("aux", [ F.Ir.Int 1 ]));
      ]
  in
  let loc = A.Diag.locator ~file:"demo" p in
  Alcotest.(check (option string)) "aux line" (Some "demo:1") (loc "aux");
  Alcotest.(check (option string)) "main line" (Some "demo:2") (loc "main");
  Alcotest.(check (option string)) "unknown fn" None (loc "nope");
  let d =
    {
      A.Diag.kind = A.Diag.Possibly_unhandled { effect_name = "E" };
      A.Diag.verdict = A.Diag.May;
      A.Diag.fn = "aux";
      A.Diag.path = [ "main"; "aux" ];
      A.Diag.site = "(perform E (int 0))";
    }
  in
  let s = A.Diag.to_string ~loc d in
  let contains sub =
    let rec mem i =
      i + String.length sub <= String.length s
      && (String.sub s i (String.length sub) = sub || mem (i + 1))
    in
    mem 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "witness steps clickable (%s)" s)
    true
    (contains "main(demo:2)" && contains "aux(demo:1)")

(* ------------------------------------------------------------------ *)
(* Satellite: the campaign's resolution census lands in the metrics
   registry, one increment per site per analyzed program. *)

let campaign_records_resolution_metrics () =
  let seed = 23 and count = 30 in
  let expected = Hashtbl.create 3 in
  for i = 0 to count - 1 do
    let p = C.Gen.program_of_seed (C.Fuzz.prog_seed ~seed i) in
    let c = C.Static.analyze p in
    List.iter
      (fun (s : A.Resolve.site) ->
        let k = A.Resolve.klass_to_string s.A.Resolve.r_class in
        Hashtbl.replace expected k
          (1 + Option.value ~default:0 (Hashtbl.find_opt expected k)))
      (A.Resolve.all_sites c.C.Static.result.A.Analyze.resolve)
  done;
  Metrics.scoped (fun r ->
      let before =
        List.map
          (fun k ->
            (k, Metrics.get ~r ~labels:[ ("class", k) ] "perform_site_resolution_total"))
          [ "mono"; "poly"; "mega" ]
      in
      let stats =
        C.Fuzz.campaign ~seed ~count ~dwarf:false ~audit:false ~analyze:true ()
      in
      (match stats.C.Fuzz.failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "campaign failure:\n%s" (C.Fuzz.failure_to_string f));
      Alcotest.(check bool) "dispatches were checked" true
        (stats.C.Fuzz.dispatch_checks > 0);
      Alcotest.(check int) "one bound table per program" count
        stats.C.Fuzz.bound_checks;
      List.iter
        (fun k ->
          Alcotest.(check int)
            ("class " ^ k)
            (Option.value ~default:0 (Hashtbl.find_opt expected k))
            (Metrics.get ~r ~labels:[ ("class", k) ] "perform_site_resolution_total"
            - List.assoc k before))
        [ "mono"; "poly"; "mega" ])

let suite =
  [
    test "classification by fan-out" classification_by_fanout;
    test "nearest handler shadows outer" nearest_handler_shadows;
    test "boundary flags on built-ins" boundary_flags_on_builtins;
    test "runtime map is total and inverse" runtime_map_is_total_and_inverse;
    test "dispatch agreement on built-ins" dispatch_agreement_on_builtins;
    test "dispatch agreement under multishot" dispatch_agreement_multishot;
    test "measured counters within bounds (all policies)" bounds_hold_on_builtins;
    test "cost-bound unit values" costbound_unit_values;
    test "corpus x policy soundness matrix" corpus_policy_matrix;
    test "checker catches injected violations" checker_catches_injected_violations;
    test "dedup collapses witness paths" dedup_collapses_witness_paths;
    test "locator renders file:line witnesses" locator_renders_file_lines;
    test "campaign records resolution metrics" campaign_records_resolution_metrics;
  ]
