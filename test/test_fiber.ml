module F = Retrofit_fiber

let test name f = Alcotest.test_case name `Quick f

let run ?cfuns cfg p =
  let compiled = F.Compile.compile p in
  F.Machine.run ?cfuns cfg compiled

let run_std cfg p = run ~cfuns:F.Programs.standard_cfuns cfg p

let expect_done ?(cfg = F.Config.mc) ?cfuns p n =
  match run ?cfuns cfg p with
  | F.Machine.Done v, _ -> Alcotest.(check int) "result" n v
  | F.Machine.Uncaught (l, _), _ -> Alcotest.failf "uncaught %s" l
  | F.Machine.Fatal m, _ -> Alcotest.failf "fatal: %s" m

let expect_uncaught ?(cfg = F.Config.mc) p label =
  match run ~cfuns:F.Programs.standard_cfuns cfg p with
  | F.Machine.Uncaught (l, _), _ -> Alcotest.(check string) "label" label l
  | F.Machine.Done v, _ -> Alcotest.failf "done %d" v
  | F.Machine.Fatal m, _ -> Alcotest.failf "fatal: %s" m

(* ---------------- Segment / Stack_cache ---------------- *)

let segment_basics () =
  let s = F.Segment.create ~base:100 ~size:10 in
  Alcotest.(check int) "limit" 100 (F.Segment.limit s);
  Alcotest.(check int) "top" 110 (F.Segment.top s);
  F.Segment.write s 105 42;
  Alcotest.(check int) "read" 42 (F.Segment.read s 105);
  Alcotest.(check bool) "contains" true (F.Segment.contains s 109);
  Alcotest.(check bool) "not contains top" false (F.Segment.contains s 110);
  Alcotest.check_raises "oob"
    (Invalid_argument "Segment: address 110 outside [100, 110)") (fun () ->
      ignore (F.Segment.read s 110))

let segment_blit () =
  let src = F.Segment.create ~base:0 ~size:4 in
  for i = 0 to 3 do
    F.Segment.write src i (i + 1)
  done;
  let dst = F.Segment.create ~base:100 ~size:8 in
  F.Segment.blit_into ~src ~dst;
  (* contents preserved at the high end *)
  for i = 0 to 3 do
    Alcotest.(check int) "word" (i + 1) (F.Segment.read dst (104 + i))
  done

let cache_roundtrip () =
  let c = F.Stack_cache.create () in
  let s = F.Segment.create ~base:0 ~size:32 in
  F.Stack_cache.put c ~size:32 s;
  Alcotest.(check int) "population" 1 (F.Stack_cache.population c);
  Alcotest.(check bool) "hit" true (F.Stack_cache.take c ~size:32 <> None);
  Alcotest.(check bool) "miss after take" true (F.Stack_cache.take c ~size:32 = None);
  Alcotest.(check bool) "size mismatch" true (F.Stack_cache.take c ~size:64 = None)

let cache_bound () =
  let c = F.Stack_cache.create ~max_per_bucket:2 () in
  for i = 0 to 4 do
    F.Stack_cache.put c ~size:16 (F.Segment.create ~base:(i * 100) ~size:16)
  done;
  Alcotest.(check int) "bounded" 2 (F.Stack_cache.population c);
  Alcotest.(check int) "words tracked" 32 (F.Stack_cache.total_words c)

let cache_passthrough () =
  (* max_per_bucket:0 degrades the cache to a pass-through *)
  let c = F.Stack_cache.create ~max_per_bucket:0 () in
  F.Stack_cache.put c ~size:16 (F.Segment.create ~base:0 ~size:16);
  Alcotest.(check bool) "retains nothing" true (F.Stack_cache.take c ~size:16 = None);
  Alcotest.(check int) "population" 0 (F.Stack_cache.population c);
  (* a machine driven through a pass-through cache still works and
     records only misses *)
  let compiled = F.Compile.compile (F.Programs.effect_roundtrip ~iters:50) in
  match F.Machine.run ~cache:c F.Config.mc compiled with
  | F.Machine.Done 0, counters ->
      Alcotest.(check int) "no hits" 0
        (Retrofit_util.Counter.get counters "stack_cache_hit");
      Alcotest.(check bool) "misses counted" true
        (Retrofit_util.Counter.get counters "stack_cache_miss" > 0)
  | _ -> Alcotest.fail "pass-through cache broke the machine"

let cache_total_words_cap () =
  let c = F.Stack_cache.create ~max_per_bucket:64 ~max_total_words:40 () in
  for i = 0 to 4 do
    F.Stack_cache.put c ~size:16 (F.Segment.create ~base:(i * 100) ~size:16)
  done;
  (* 16 + 16 fit under 40; the third 16 would make 48 and is dropped *)
  Alcotest.(check int) "population capped" 2 (F.Stack_cache.population c);
  Alcotest.(check int) "words capped" 32 (F.Stack_cache.total_words c);
  ignore (F.Stack_cache.take c ~size:16);
  F.Stack_cache.put c ~size:8 (F.Segment.create ~base:900 ~size:8);
  Alcotest.(check int) "room freed by take" 24 (F.Stack_cache.total_words c)

let cache_total_words_exact () =
  (* Drive the cache with a deterministic mixed put/take workload and
     re-derive its aggregate bookkeeping from the retained segments
     after every operation: total_words must track the sum of retained
     sizes exactly and never exceed the cap. *)
  let cap = 200 in
  let c = F.Stack_cache.create ~max_per_bucket:8 ~max_total_words:cap () in
  let rng = Retrofit_util.Rng.create 5 in
  let sizes = [| 8; 16; 32; 64 |] in
  for i = 0 to 499 do
    let size = sizes.(Retrofit_util.Rng.int rng 4) in
    if Retrofit_util.Rng.bool rng then
      F.Stack_cache.put c ~size (F.Segment.create ~base:(i * 1000) ~size)
    else ignore (F.Stack_cache.take c ~size);
    let sum = ref 0 and n = ref 0 in
    F.Stack_cache.iter c (fun seg ->
        sum := !sum + F.Segment.size seg;
        incr n);
    Alcotest.(check int) "total_words = sum of retained sizes" !sum
      (F.Stack_cache.total_words c);
    Alcotest.(check int) "population = retained count" !n
      (F.Stack_cache.population c);
    Alcotest.(check bool) "cap respected" true (F.Stack_cache.total_words c <= cap)
  done

let cache_take_zeroed () =
  let c = F.Stack_cache.create () in
  let s = F.Segment.create ~base:50 ~size:24 in
  for a = 50 to 73 do
    F.Segment.write s a (a * 7)
  done;
  F.Stack_cache.put c ~size:24 s;
  (match F.Stack_cache.take c ~size:24 with
  | None -> Alcotest.fail "expected a cache hit"
  | Some seg ->
      for a = 50 to 73 do
        Alcotest.(check int) "word zeroed" 0 (F.Segment.read seg a)
      done)

let cache_hit_miss_lookup_identity () =
  (* Every cached-path allocation is one lookup that is either a hit or
     a miss; the machine's counters must account for all of them. *)
  let compiled = F.Compile.compile (F.Programs.effect_roundtrip ~iters:200) in
  match F.Machine.run F.Config.mc compiled with
  | F.Machine.Done _, counters ->
      let get = Retrofit_util.Counter.get counters in
      Alcotest.(check int) "hit + miss = lookups"
        (get "stack_cache_lookup")
        (get "stack_cache_hit" + get "stack_cache_miss");
      Alcotest.(check bool) "lookups happened" true (get "stack_cache_lookup" > 0)
  | _ -> Alcotest.fail "effect roundtrip failed"

let cache_scoped_stats_independent () =
  (* Two back-to-back experiments sharing one cache must each see only
     their own traffic: scoped_stats diffs around the callback, so the
     second report is independent of the first. *)
  let cache = F.Stack_cache.create () in
  let compiled = F.Compile.compile (F.Programs.effect_roundtrip ~iters:100) in
  let go () =
    match F.Machine.run ~cache F.Config.mc compiled with
    | F.Machine.Done _, _ -> ()
    | _ -> Alcotest.fail "effect roundtrip failed"
  in
  let (), s1 = F.Stack_cache.scoped_stats cache go in
  let (), s2 = F.Stack_cache.scoped_stats cache go in
  Alcotest.(check bool) "first run looked up" true (s1.F.Stack_cache.lookups > 0);
  (* the cache is warm on the second run, so the split shifts toward
     hits — but the per-scope totals balance independently *)
  Alcotest.(check int) "scope 1 balances" s1.F.Stack_cache.lookups
    (s1.F.Stack_cache.hits + s1.F.Stack_cache.misses);
  Alcotest.(check int) "scope 2 balances" s2.F.Stack_cache.lookups
    (s2.F.Stack_cache.hits + s2.F.Stack_cache.misses);
  Alcotest.(check int) "same workload, same lookups" s1.F.Stack_cache.lookups
    s2.F.Stack_cache.lookups;
  Alcotest.(check bool) "warm cache hits more" true
    (s2.F.Stack_cache.hits >= s1.F.Stack_cache.hits);
  (* cumulative stats cover both scopes *)
  let total = F.Stack_cache.stats cache in
  Alcotest.(check int) "cumulative lookups"
    (s1.F.Stack_cache.lookups + s2.F.Stack_cache.lookups)
    total.F.Stack_cache.lookups

let cache_reset_stats () =
  let cache = F.Stack_cache.create () in
  let compiled = F.Compile.compile (F.Programs.effect_roundtrip ~iters:50) in
  (match F.Machine.run ~cache F.Config.mc compiled with
  | F.Machine.Done _, _ -> ()
  | _ -> Alcotest.fail "effect roundtrip failed");
  Alcotest.(check bool) "stats accumulated" true
    ((F.Stack_cache.stats cache).F.Stack_cache.lookups > 0);
  F.Stack_cache.reset_stats cache;
  Alcotest.(check bool) "reset to zero" true
    (F.Stack_cache.stats cache = F.Stack_cache.zero_stats)

(* ---------------- Compiler ---------------- *)

let compile_leafness () =
  let compiled = F.Compile.compile (F.Programs.fib ~n:5) in
  let fib = Option.get (F.Compile.function_at compiled 0) in
  Alcotest.(check bool) "fib not leaf" false fib.F.Compile.is_leaf;
  let compiled =
    F.Compile.compile
      { F.Ir.fns = [ F.Ir.fn "main" [] (F.Ir.Binop (F.Ir.Add, F.Ir.Int 1, F.Ir.Int 2)) ];
        main = "main" }
  in
  Alcotest.(check bool) "main leaf" true compiled.F.Compile.fns.(0).F.Compile.is_leaf

let compile_frame_words () =
  let p =
    { F.Ir.fns =
        [ F.Ir.fn "main" []
            (F.Ir.Let ("a", F.Ir.Int 1,
               F.Ir.Trywith (F.Ir.Var "a", [ ("E", "x", F.Ir.Var "x") ]))) ];
      main = "main" }
  in
  let compiled = F.Compile.compile p in
  let main = compiled.F.Compile.fns.(0) in
  (* 1 ra + 2 locals (a, handler slot) + 2 trap words *)
  Alcotest.(check int) "frame words" 5 main.F.Compile.frame_words;
  Alcotest.(check int) "max traps" 1 main.F.Compile.max_traps

let compile_errors () =
  let bad fns main =
    match F.Compile.compile { F.Ir.fns; main } with
    | _ -> false
    | exception F.Compile.Error _ -> true
  in
  Alcotest.(check bool) "unknown fn" true
    (bad [ F.Ir.fn "main" [] (F.Ir.Call ("nope", [])) ] "main");
  Alcotest.(check bool) "arity" true
    (bad
       [ F.Ir.fn "f" [ "x" ] (F.Ir.Var "x"); F.Ir.fn "main" [] (F.Ir.Call ("f", [])) ]
       "main");
  Alcotest.(check bool) "unbound var" true
    (bad [ F.Ir.fn "main" [] (F.Ir.Var "ghost") ] "main");
  Alcotest.(check bool) "missing main" true (bad [ F.Ir.fn "f" [] (F.Ir.Int 1) ] "zz");
  Alcotest.(check bool) "duplicate" true
    (bad [ F.Ir.fn "f" [] (F.Ir.Int 1); F.Ir.fn "f" [] (F.Ir.Int 2) ] "f")

let cfi_edits_shape () =
  let compiled = F.Compile.compile (F.Programs.exnraise ~iters:1) in
  let main = compiled.F.Compile.fns.(0) in
  (* first edit at entry; trap push/pop produce two more *)
  Alcotest.(check bool) "at least 3 edits" true (List.length main.F.Compile.cfi_edits >= 3);
  let entry_addr, _ = List.hd main.F.Compile.cfi_edits in
  Alcotest.(check int) "first edit at entry" main.F.Compile.entry entry_addr

(* ---------------- Machine: results across configs ---------------- *)

let programs_both_configs =
  [
    ("fib 15", F.Programs.fib ~n:15, 610);
    ("ack 2 3", F.Programs.ack ~m:2 ~n:3, 9);
    ("tak 12 8 4", F.Programs.tak ~x:12 ~y:8 ~z:4, 5);
    ("motzkin 10", F.Programs.motzkin ~n:10, 2188);
    ("sudan 2 2 1", F.Programs.sudan ~n:2 ~x:2 ~y:1 (), 27);
    ("exnval", F.Programs.exnval ~iters:500, 0);
    ("exnraise", F.Programs.exnraise ~iters:500, 0);
    ("extcall", F.Programs.extcall ~iters:500, 0);
    ("callback", F.Programs.callback ~iters:500, 0);
    ("meander", F.Programs.meander, 42);
  ]

let both_configs () =
  List.iter
    (fun (name, p, expected) ->
      List.iter
        (fun cfg ->
          match run_std cfg p with
          | F.Machine.Done v, _ ->
              Alcotest.(check int) (name ^ "/" ^ F.Config.name cfg) expected v
          | other, _ ->
              Alcotest.failf "%s/%s: %s" name (F.Config.name cfg)
                (match other with
                | F.Machine.Uncaught (l, _) -> "uncaught " ^ l
                | F.Machine.Fatal m -> m
                | _ -> "?"))
        [ F.Config.stock; F.Config.mc ])
    programs_both_configs

let effect_programs () =
  expect_done ~cfuns:F.Programs.standard_cfuns (F.Programs.effect_roundtrip ~iters:100) 0;
  expect_done (F.Programs.counter_effect ~upto:10) 55;
  expect_done (F.Programs.discontinue_cleanup) 42;
  expect_done ~cfuns:F.Programs.standard_cfuns F.Programs.effect_in_callback 7;
  expect_done (F.Programs.effect_depth ~depth:5 ~iters:5) 0;
  expect_done (F.Programs.deep_recursion ~depth:5000) 5000;
  expect_uncaught F.Programs.one_shot_violation "Invalid_argument";
  expect_uncaught F.Programs.unhandled_effect "Unhandled"

let stock_rejects_effects () =
  match run F.Config.stock (F.Programs.counter_effect ~upto:3) with
  | F.Machine.Fatal msg, _ ->
      Alcotest.(check bool) "mentions stock" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Fatal under stock"

let count_down depth =
  {
    F.Ir.fns =
      [
        F.Ir.fn "count" [ "n" ]
          (F.Ir.If
             ( F.Ir.Binop (F.Ir.Eq, F.Ir.Var "n", F.Ir.Int 0),
               F.Ir.Int 0,
               F.Ir.Binop
                 ( F.Ir.Add,
                   F.Ir.Int 1,
                   F.Ir.Call ("count", [ F.Ir.Binop (F.Ir.Sub, F.Ir.Var "n", F.Ir.Int 1) ])
                 ) ));
        F.Ir.fn "main" [] (F.Ir.Call ("count", [ F.Ir.Int depth ]));
      ];
    main = "main";
  }

let stock_stack_overflow () =
  let cfg = { F.Config.stock with F.Config.stock_stack_words = 256 } in
  match run cfg (count_down 1_000) with
  | F.Machine.Uncaught ("Stack_overflow", _), _ -> ()
  | F.Machine.Done _, _ -> Alcotest.fail "should overflow"
  | other, _ ->
      Alcotest.failf "unexpected %s"
        (match other with
        | F.Machine.Uncaught (l, _) -> l
        | F.Machine.Fatal m -> m
        | _ -> "?")

let mc_grows_instead () =
  (* the same deep recursion that overflows a 256-word stock stack just
     grows fibers under MC *)
  let counters =
    match run F.Config.mc (F.Programs.deep_recursion ~depth:3000) with
    | F.Machine.Done 3000, c -> c
    | _ -> Alcotest.fail "deep recursion failed"
  in
  Alcotest.(check bool) "grew" true
    (Retrofit_util.Counter.get counters "stack_grow" > 0)

(* invariance: results and key event counts independent of initial size *)
let growth_transparent () =
  let results =
    List.map
      (fun words ->
        let cfg = F.Config.with_initial_words words F.Config.mc in
        match run_std cfg (F.Programs.counter_effect ~upto:30) with
        | F.Machine.Done v, c ->
            (v, Retrofit_util.Counter.get c "perform",
             Retrofit_util.Counter.get c "resume")
        | _ -> Alcotest.fail "failed")
      [ 16; 64; 512 ]
  in
  match results with
  | first :: rest ->
      List.iter (fun r -> Alcotest.(check bool) "invariant" true (r = first)) rest
  | [] -> ()

let red_zone_transparent () =
  List.iter
    (fun rz ->
      let cfg = F.Config.mc_red_zone rz in
      match run_std cfg (F.Programs.fib ~n:12) with
      | F.Machine.Done v, _ -> Alcotest.(check int) "fib" 144 v
      | _ -> Alcotest.fail "failed")
    [ 0; 8; 16; 32; 64 ]

let cache_transparent () =
  List.iter
    (fun cache ->
      let cfg = F.Config.with_cache cache F.Config.mc in
      match run_std cfg (F.Programs.effect_roundtrip ~iters:200) with
      | F.Machine.Done 0, c ->
          if cache then
            Alcotest.(check bool) "hits" true
              (Retrofit_util.Counter.get c "stack_cache_hit" > 0)
          else
            Alcotest.(check int) "no hits" 0
              (Retrofit_util.Counter.get c "stack_cache_hit")
      | _ -> Alcotest.fail "failed")
    [ true; false ]

let check_elision () =
  (* under red zone 0 every executed call is checked; under a huge red
     zone leaf calls are not *)
  let checks rz =
    let cfg = F.Config.mc_red_zone rz in
    let _, c = run_std cfg (F.Programs.callback ~iters:100) in
    ( Retrofit_util.Counter.get c "overflow_check",
      Retrofit_util.Counter.get c "check_elided" )
  in
  let checked0, elided0 = checks 0 in
  let checked64, elided64 = checks 64 in
  Alcotest.(check int) "rz0 elides nothing" 0 elided0;
  Alcotest.(check bool) "rz64 elides leaves" true (elided64 > 0);
  Alcotest.(check bool) "rz64 checks fewer" true (checked64 < checked0)

let one_shot_enforced () =
  expect_uncaught F.Programs.one_shot_violation "Invalid_argument"

let cross_fiber_resume () = expect_done F.Programs.cross_resume 42

(* §5.2: the implementation is one-shot by choice; with copying enabled
   the machine exhibits the multi-shot semantics of §4 exactly. *)
let multishot_matches_semantics () =
  expect_uncaught F.Programs.multishot_choice "Invalid_argument";
  expect_done ~cfg:(F.Config.with_multishot true F.Config.mc)
    F.Programs.multishot_choice 30;
  (* copying leaves the continuation usable and counts the copies *)
  let _, c =
    run (F.Config.with_multishot true F.Config.mc) F.Programs.multishot_choice
  in
  Alcotest.(check int) "two copies" 2 (Retrofit_util.Counter.get c "cont_copy");
  Alcotest.(check bool) "words copied" true
    (Retrofit_util.Counter.get c "words_copied" > 0)

(* one-shot programs behave identically whether or not copying is on *)
let multishot_transparent_for_one_shot () =
  List.iter
    (fun p ->
      let plain =
        match run ~cfuns:F.Programs.standard_cfuns F.Config.mc p with
        | F.Machine.Done v, _ -> v
        | _ -> Alcotest.fail "plain failed"
      in
      match
        run ~cfuns:F.Programs.standard_cfuns
          (F.Config.with_multishot true F.Config.mc)
          p
      with
      | F.Machine.Done v, _ -> Alcotest.(check int) "same result" plain v
      | _ -> Alcotest.fail "multishot failed")
    [
      F.Programs.effect_roundtrip ~iters:20;
      F.Programs.counter_effect ~upto:8;
      F.Programs.cross_resume;
    ]

let fibers_freed () =
  let _, c = run_std F.Config.mc (F.Programs.effect_roundtrip ~iters:50) in
  Alcotest.(check int) "allocs = frees"
    (Retrofit_util.Counter.get c "fiber_alloc")
    (Retrofit_util.Counter.get c "fiber_free")

let reperform_cost_linear () =
  let reperforms depth =
    let _, c = run F.Config.mc (F.Programs.effect_depth ~depth ~iters:1) in
    Retrofit_util.Counter.get c "reperform"
  in
  Alcotest.(check int) "depth 3" 3 (reperforms 3);
  Alcotest.(check int) "depth 7" 7 (reperforms 7)

(* ---------------- Address -> fiber index ---------------- *)

(* At every call the index must map the current fiber's own register
   addresses back to the current fiber, and unmapped addresses to None.
   The programs are chosen to churn the index through every mutation:
   grow (deep recursion), free + cached realloc (effect roundtrip) and
   multishot copy_fiber. *)
let addr_index_consistent () =
  let probe m =
    let f = F.Machine.current_fiber m in
    let check_addr a =
      if a <> 0 then
        match F.Machine.fiber_of_addr m a with
        | Some owner ->
            if owner.F.Fiber.id <> f.F.Fiber.id then
              Alcotest.failf "address %d resolved to fiber %d, not current %d" a
                owner.F.Fiber.id f.F.Fiber.id
        | None -> Alcotest.failf "address %d of the current fiber is unmapped" a
    in
    check_addr f.F.Fiber.regs.sp;
    check_addr f.F.Fiber.regs.cfa;
    check_addr (F.Segment.top f.F.Fiber.seg - 1);
    Alcotest.(check bool) "unmapped high address" true
      (F.Machine.fiber_of_addr m 1_000_000_000 = None);
    Alcotest.(check bool) "unmapped negative address" true
      (F.Machine.fiber_of_addr m (-5) = None)
  in
  List.iter
    (fun (name, cfg, p, expected) ->
      match
        F.Machine.run ~cfuns:F.Programs.standard_cfuns ~on_call:probe cfg
          (F.Compile.compile p)
      with
      | F.Machine.Done v, c ->
          Alcotest.(check int) name expected v;
          Alcotest.(check bool) "probes counted" true
            (Retrofit_util.Counter.get c "addr_index_probe" > 0)
      | _ -> Alcotest.failf "%s failed under address-index probing" name)
    [
      ("grow", F.Config.mc, F.Programs.deep_recursion ~depth:2000, 2000);
      ("free/realloc", F.Config.mc, F.Programs.effect_roundtrip ~iters:100, 0);
      ( "multishot copy",
        F.Config.with_multishot true F.Config.mc,
        F.Programs.multishot_choice,
        30 );
      ("cross resume", F.Config.mc, F.Programs.cross_resume, 42);
    ]

(* With many suspended fibers alive, the index still resolves each
   continuation's own saved sp — the backtrace-under-load access
   pattern of §6.3.4. *)
let addr_index_suspended () =
  let n = 50 in
  let list_pending =
    ( "list_pending",
      fun ctx _args ->
        let m = ctx.F.Machine.machine in
        let conts = F.Machine.live_continuations m in
        Alcotest.(check int) "suspended count" n (List.length conts);
        List.iter
          (fun (_, fibers) ->
            List.iter
              (fun (f : F.Fiber.t) ->
                match F.Machine.fiber_of_addr m f.F.Fiber.regs.sp with
                | Some owner ->
                    Alcotest.(check int) "owner" f.F.Fiber.id owner.F.Fiber.id
                | None -> Alcotest.fail "suspended fiber unmapped")
              fibers)
          conts;
        0 )
  in
  match
    F.Machine.run ~cfuns:[ list_pending ] F.Config.mc
      (F.Compile.compile (F.Programs.suspended_requests ~n))
  with
  | F.Machine.Done _, _ -> ()
  | _ -> Alcotest.fail "suspended_requests failed"

let shadow_backtrace_shape () =
  let compiled = F.Compile.compile F.Programs.meander in
  let seen = ref [] in
  let hook m =
    let f = F.Machine.current_fiber m in
    if f.F.Fiber.regs.fn >= 0 then begin
      let name = (F.Machine.compiled m).F.Compile.fns.(f.regs.fn).F.Compile.fn_name in
      if name = "c_to_ocaml" then seen := F.Machine.shadow_backtrace m
    end
  in
  (match F.Machine.run ~cfuns:F.Programs.standard_cfuns ~on_call:hook F.Config.mc compiled with
  | F.Machine.Done 42, _ -> ()
  | _ -> Alcotest.fail "meander failed");
  Alcotest.(check (list string)) "backtrace"
    [ "c_to_ocaml"; "<C>"; "omain"; "main"; "<main>" ]
    !seen

let unregistered_cfun_fatal () =
  match run F.Config.mc (F.Programs.extcall ~iters:1) with
  | F.Machine.Fatal msg, _ ->
      Alcotest.(check bool) "names the function" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected fatal"

let fuel_bound () =
  let compiled = F.Compile.compile (F.Programs.fib ~n:25) in
  match F.Machine.run ~fuel:1_000 F.Config.mc compiled with
  | F.Machine.Fatal msg, _ ->
      Alcotest.(check bool) "out of fuel" true
        (String.length msg >= 11 && String.sub msg 0 11 = "out of fuel")
  | _ -> Alcotest.fail "expected out of fuel"

(* property: instruction counts are deterministic *)
let prop_deterministic =
  QCheck.Test.make ~name:"machine runs are deterministic" ~count:20
    (QCheck.make (QCheck.Gen.int_range 5 12))
    (fun n ->
      let p = F.Programs.fib ~n in
      let run1 = run F.Config.mc p and run2 = run F.Config.mc p in
      match (run1, run2) with
      | (F.Machine.Done a, c1), (F.Machine.Done b, c2) ->
          a = b
          && Retrofit_util.Counter.to_list c1 = Retrofit_util.Counter.to_list c2
      | _ -> false)

(* property: MC instructions >= stock instructions for check-bearing
   programs, and results agree *)
let prop_mc_overhead_nonnegative =
  QCheck.Test.make ~name:"MC cost >= stock cost, same result" ~count:15
    (QCheck.make (QCheck.Gen.int_range 5 12))
    (fun n ->
      let p = F.Programs.fib ~n in
      match (run F.Config.stock p, run F.Config.mc p) with
      | (F.Machine.Done a, c1), (F.Machine.Done b, c2) ->
          a = b
          && Retrofit_util.Counter.get c2 "instructions"
             >= Retrofit_util.Counter.get c1 "instructions"
      | _ -> false)

let suite =
  [
    test "segment basics" segment_basics;
    test "segment blit preserves top" segment_blit;
    test "stack cache roundtrip" cache_roundtrip;
    test "stack cache bound" cache_bound;
    test "stack cache pass-through at bucket 0" cache_passthrough;
    test "stack cache total-words cap" cache_total_words_cap;
    test "stack cache total-words exact" cache_total_words_exact;
    test "stack cache take returns zeroed segment" cache_take_zeroed;
    test "stack cache hit+miss=lookups" cache_hit_miss_lookup_identity;
    test "stack cache scoped stats independent" cache_scoped_stats_independent;
    test "stack cache reset stats" cache_reset_stats;
    test "compiler leaf analysis" compile_leafness;
    test "compiler frame words" compile_frame_words;
    test "compiler errors" compile_errors;
    test "cfi edits shape" cfi_edits_shape;
    test "programs on both configs" both_configs;
    test "effect programs" effect_programs;
    test "stock rejects effects" stock_rejects_effects;
    test "stock stack overflow" stock_stack_overflow;
    test "mc grows instead of overflowing" mc_grows_instead;
    test "growth is transparent" growth_transparent;
    test "red zone is transparent" red_zone_transparent;
    test "stack cache is transparent" cache_transparent;
    test "check elision by red zone" check_elision;
    test "one-shot enforced" one_shot_enforced;
    test "cross-fiber resume" cross_fiber_resume;
    test "multishot copying matches the semantics" multishot_matches_semantics;
    test "multishot transparent for one-shot programs" multishot_transparent_for_one_shot;
    test "fibers freed" fibers_freed;
    test "reperform cost linear in depth" reperform_cost_linear;
    test "address index consistent across grow/free/copy" addr_index_consistent;
    test "address index under suspended load" addr_index_suspended;
    test "shadow backtrace shape (Fig 1d)" shadow_backtrace_shape;
    test "unregistered C function is fatal" unregistered_cfun_fatal;
    test "fuel bound" fuel_bound;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_mc_overhead_nonnegative;
  ]
