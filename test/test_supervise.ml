(* Supervision trees, mailboxes, and nurseries (ISSUE 7).

   Everything runs inside [Sched.run] with a hand-cranked clock ref, so
   restart windows, heartbeats, and escalation are fully deterministic. *)

module C = Retrofit_core
module Sup = C.Supervise
module N = C.Supervise.Nursery

let test name f = Alcotest.test_case name `Quick f

exception Boom

let in_sched f = C.Sched.run f

(* -------------- restart strategies -------------- *)

(* A transient child that crashes [crashes] times then succeeds is
   restarted exactly [crashes] times; its sibling is left alone. *)
let one_for_one_restarts () =
  let a_runs = ref 0 and b_runs = ref 0 in
  let crashes = 2 in
  in_sched (fun () ->
      let tree =
        Sup.supervisor ~strategy:Sup.One_for_one ~max_restarts:5 "root"
          [
            Sup.worker "a" (fun () ->
                incr a_runs;
                if !a_runs <= crashes then raise Boom);
            Sup.worker "b" (fun () -> incr b_runs);
          ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "a restarted twice" 3 !a_runs;
      Alcotest.(check int) "b untouched" 1 !b_runs;
      Alcotest.(check int) "restart count" 2 (Sup.restarts h);
      Alcotest.(check int) "no escalation" 0 (Sup.escalations h))

(* one_for_all: a crash of either child takes the sibling down with it
   and restarts both. *)
let one_for_all_restarts () =
  let a_runs = ref 0 and b_runs = ref 0 in
  let a_cancelled = ref 0 in
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let tree =
        Sup.supervisor ~strategy:Sup.One_for_all ~max_restarts:5 "root"
          [
            Sup.worker "a" (fun () ->
                incr a_runs;
                if !a_runs = 1 then (
                  (* parked on first run so the kill has a target *)
                  try C.Mvar.take mv
                  with C.Sched.Cancelled ->
                    incr a_cancelled;
                    raise C.Sched.Cancelled));
            Sup.worker "b" (fun () ->
                incr b_runs;
                if !b_runs = 1 then raise Boom);
          ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "a ran twice" 2 !a_runs;
      Alcotest.(check int) "a cancelled exactly once" 1 !a_cancelled;
      Alcotest.(check int) "b ran twice" 2 !b_runs)

(* rest_for_one: only children started after the crasher are recycled. *)
let rest_for_one_restarts () =
  let runs = Array.make 3 0 in
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let w i body = Sup.worker ("w" ^ string_of_int i) body in
      let tree =
        Sup.supervisor ~strategy:Sup.Rest_for_one ~max_restarts:5 "root"
          [
            w 0 (fun () -> runs.(0) <- runs.(0) + 1);
            w 1 (fun () ->
                runs.(1) <- runs.(1) + 1;
                if runs.(1) = 1 then raise Boom);
            w 2 (fun () ->
                runs.(2) <- runs.(2) + 1;
                if runs.(2) = 1 then C.Mvar.take mv);
          ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "w0 untouched" 1 runs.(0);
      Alcotest.(check int) "w1 restarted" 2 runs.(1);
      Alcotest.(check int) "w2 recycled" 2 runs.(2))

(* -------------- restart policies -------------- *)

let temporary_never_restarted () =
  let runs = ref 0 in
  in_sched (fun () ->
      let tree =
        Sup.supervisor "root"
          [
            Sup.worker ~restart:Sup.Temporary "t" (fun () ->
                incr runs;
                raise Boom);
          ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "never restarted" 1 !runs;
      Alcotest.(check int) "no restarts" 0 (Sup.restarts h))

(* A permanent child is restarted even on normal exit, so it burns the
   budget and the root gives up. *)
let permanent_burns_budget () =
  let runs = ref 0 in
  in_sched (fun () ->
      let tree =
        Sup.supervisor ~max_restarts:3 "root"
          [ Sup.worker ~restart:Sup.Permanent "p" (fun () -> incr runs) ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "gave up at root" true
        (Sup.wait h = Sup.Gave_up "root");
      Alcotest.(check int) "budget spent" 4 !runs;
      Alcotest.(check bool) "not running" true (not (Sup.running h)))

(* -------------- intensity window and escalation -------------- *)

(* With a sliding window shorter than the gap between crashes the
   restart intensity never trips, even far past max_restarts. *)
let window_forgives_slow_crashes () =
  let clock = ref 0 in
  let runs = ref 0 in
  in_sched (fun () ->
      let tree =
        Sup.supervisor ~max_restarts:1 ~window:50 "root"
          [
            Sup.worker "w" (fun () ->
                incr runs;
                clock := !clock + 100;
                if !runs <= 5 then raise Boom);
          ]
      in
      let h = Sup.start ~clock:(fun () -> !clock) tree in
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "five restarts forgiven" 5 (Sup.restarts h))

(* Same crash rate, wide window: budget blows, the nested supervisor
   escalates, the root restarts the whole subtree, then itself gives
   up.  Every layer's escalation is visible in the counters. *)
let escalation_to_root () =
  let clock = ref 0 in
  let events = ref [] in
  in_sched (fun () ->
      let tree =
        Sup.supervisor ~max_restarts:1 "root"
          [
            Sup.supervisor ~max_restarts:1 ~window:1_000 "sub"
              [
                Sup.worker "crasher" (fun () ->
                    clock := !clock + 10;
                    raise Boom);
              ];
          ]
      in
      let h =
        Sup.start
          ~clock:(fun () -> !clock)
          ~on_event:(fun e -> events := e :: !events)
          tree
      in
      Alcotest.(check bool) "gave up at root" true
        (Sup.wait h = Sup.Gave_up "root");
      Alcotest.(check bool) "escalations recorded" true (Sup.escalations h >= 2);
      Alcotest.(check bool) "sub escalated" true
        (List.exists (function Sup.Escalated "root/sub" -> true | _ -> false)
           !events);
      (* the root restarted the whole sub-tree at least once before
         giving up: the crasher was started under a fresh sub *)
      Alcotest.(check bool) "subtree restarted" true
        (List.length
           (List.filter
              (function Sup.Started "root/sub/crasher" -> true | _ -> false)
              !events)
        >= 2))

(* -------------- kill and heartbeats (watchdog API) -------------- *)

let kill_restarts_worker () =
  let runs = ref 0 in
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let tree =
        Sup.supervisor ~max_restarts:3 "root"
          [
            Sup.worker "w" (fun () ->
                incr runs;
                if !runs = 1 then C.Mvar.take mv);
          ]
      in
      let h = Sup.start tree in
      Alcotest.(check bool) "running" true (Sup.running h);
      Alcotest.(check bool) "kill hits" true (Sup.kill h "w");
      Alcotest.(check bool) "kill unknown misses" false (Sup.kill h "zzz");
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed);
      Alcotest.(check int) "restarted after kill" 2 !runs;
      Alcotest.(check int) "one restart" 1 (Sup.restarts h))

let heartbeat_and_self_path () =
  let clock = ref 0 in
  let path = ref "" in
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let tree =
        Sup.supervisor "root"
          [
            Sup.supervisor "mid"
              [
                Sup.worker "w" (fun () ->
                    path := Sup.self_path ();
                    clock := 42;
                    Sup.heartbeat ();
                    C.Mvar.take mv);
              ];
          ]
      in
      let h = Sup.start ~clock:(fun () -> !clock) tree in
      Alcotest.(check string) "self path" "root/mid/w" !path;
      Alcotest.(check (option int)) "heartbeat stamped" (Some 42)
        (Sup.last_heartbeat h "w");
      Alcotest.(check (option int)) "unknown child" None
        (Sup.last_heartbeat h "zzz");
      C.Mvar.put mv ();
      Alcotest.(check bool) "completed" true (Sup.wait h = Sup.Completed));
  Alcotest.(check string) "outside a tree" "?" (Sup.self_path ())

(* -------------- graceful shutdown -------------- *)

let shutdown_bottom_up () =
  let cleanups = ref [] in
  let stops = ref [] in
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let parked name () =
        Fun.protect
          ~finally:(fun () -> cleanups := name :: !cleanups)
          (fun () -> C.Mvar.take mv)
      in
      let tree =
        Sup.supervisor "root"
          [
            Sup.supervisor "sub" [ Sup.worker "inner" (parked "inner") ];
            Sup.worker "outer" (parked "outer");
          ]
      in
      let h =
        Sup.start
          ~on_event:(fun e ->
            match e with Sup.Stopped p -> stops := p :: !stops | _ -> ())
          tree
      in
      Alcotest.(check bool) "completed" true (Sup.shutdown h = Sup.Completed);
      (* reverse start order: outer (started last) first, then the
         sub-tree *)
      Alcotest.(check (list string)) "cleanups ran, reverse order"
        [ "outer"; "inner" ] (List.rev !cleanups);
      Alcotest.(check bool) "sub stopped" true (List.mem "root/sub" !stops);
      Alcotest.(check bool) "root stopped" true (List.mem "root" !stops))

(* -------------- mailbox -------------- *)

let mailbox_order_and_park () =
  in_sched (fun () ->
      let mb : int Sup.Mailbox.t = Sup.Mailbox.create () in
      let got = ref [] in
      C.Sched.fork (fun () ->
          for _ = 1 to 3 do
            got := Sup.Mailbox.recv mb :: !got
          done);
      Sup.Mailbox.send mb 1;
      Sup.Mailbox.send mb 2;
      C.Sched.yield ();
      Sup.Mailbox.send mb 3;
      C.Sched.yield ();
      Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got))

(* A reader cancelled while parked must not eat a later send: the
   message goes to the queue and the next reader gets it. *)
let mailbox_cancelled_reader_loses_nothing () =
  in_sched (fun () ->
      let mb : int Sup.Mailbox.t = Sup.Mailbox.create () in
      let first = ref None and second = ref None in
      let cancel =
        C.Sched.fork_cancellable (fun () ->
            try first := Some (Sup.Mailbox.recv mb)
            with C.Sched.Cancelled -> ())
      in
      C.Sched.yield ();
      cancel ();
      Sup.Mailbox.send mb 7;
      C.Sched.fork (fun () -> second := Some (Sup.Mailbox.recv mb));
      C.Sched.yield ();
      Alcotest.(check (option int)) "cancelled reader got nothing" None !first;
      Alcotest.(check (option int)) "message survived" (Some 7) !second)

(* -------------- nursery -------------- *)

let nursery_join_waits () =
  in_sched (fun () ->
      let done_ = ref 0 in
      let v =
        N.run (fun n ->
            for _ = 1 to 3 do
              N.fork n (fun () ->
                  C.Sched.yield ();
                  incr done_)
            done;
            N.join n;
            !done_)
      in
      Alcotest.(check int) "all children ran before join returned" 3 v)

let nursery_scope_exit_cancels () =
  in_sched (fun () ->
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      let cleanups = ref 0 in
      let v =
        N.run (fun n ->
            N.fork n (fun () ->
                Fun.protect
                  ~finally:(fun () -> incr cleanups)
                  (fun () -> C.Mvar.take mv));
            17 (* leave without joining: the child must not outlive us *))
      in
      Alcotest.(check int) "body value" 17 v;
      Alcotest.(check int) "child cancelled exactly once" 1 !cleanups)

let nursery_failure_cancels_siblings () =
  in_sched (fun () ->
      let sibling_cancelled = ref 0 in
      let mv : unit C.Mvar.t = C.Mvar.create_empty () in
      Alcotest.check_raises "first failure re-raised at scope" Boom (fun () ->
          N.run (fun n ->
              N.fork n (fun () ->
                  try C.Mvar.take mv
                  with C.Sched.Cancelled ->
                    incr sibling_cancelled;
                    raise C.Sched.Cancelled);
              N.fork n (fun () ->
                  C.Sched.yield ();
                  raise Boom);
              N.join n));
      Alcotest.(check int) "sibling cancelled exactly once" 1 !sibling_cancelled)

let nursery_fork_after_failure_noop () =
  in_sched (fun () ->
      let late_ran = ref false in
      (try
         N.run (fun n ->
             N.fork n (fun () -> raise Boom);
             C.Sched.yield ();
             (* scope already failing: this fork must be a no-op *)
             N.fork n (fun () -> late_ran := true);
             N.join n)
       with Boom -> ());
      Alcotest.(check bool) "late fork suppressed" false !late_ran)

let nursery_check_reports_failure () =
  in_sched (fun () ->
      Alcotest.check_raises "check raises first failure" Boom (fun () ->
          N.run (fun n ->
              N.fork n (fun () -> raise Boom);
              C.Sched.yield ();
              N.check n)))

(* A chaos kill of a nursery child is not a scope failure: with a 100%
   kill rate the killable child dies at its first suspension and the
   scope still completes normally. *)
let nursery_kill_is_not_failure () =
  let killed_cleanup = ref 0 in
  let finished = ref false in
  let chaos =
    { (C.Sched.Chaos.default ~seed:9) with C.Sched.Chaos.kill_rate = 1.0 }
  in
  C.Sched.run ~chaos (fun () ->
      N.run (fun n ->
          N.fork n ~killable:true (fun () ->
              Fun.protect
                ~finally:(fun () -> incr killed_cleanup)
                (fun () ->
                  C.Sched.yield ();
                  C.Sched.yield ()));
          N.join n);
      finished := true);
  Alcotest.(check bool) "scope completed" true !finished;
  Alcotest.(check int) "killed child unwound once" 1 !killed_cleanup

let suite =
  [
    test "one_for_one restarts crasher only" one_for_one_restarts;
    test "one_for_all recycles siblings" one_for_all_restarts;
    test "rest_for_one recycles later starts" rest_for_one_restarts;
    test "temporary never restarted" temporary_never_restarted;
    test "permanent burns budget" permanent_burns_budget;
    test "window forgives slow crashes" window_forgives_slow_crashes;
    test "escalation reaches root" escalation_to_root;
    test "kill restarts worker" kill_restarts_worker;
    test "heartbeat and self_path" heartbeat_and_self_path;
    test "shutdown bottom-up" shutdown_bottom_up;
    test "mailbox order and park" mailbox_order_and_park;
    test "mailbox survives cancelled reader" mailbox_cancelled_reader_loses_nothing;
    test "nursery join waits" nursery_join_waits;
    test "nursery scope exit cancels" nursery_scope_exit_cancels;
    test "nursery failure cancels siblings" nursery_failure_cancels_siblings;
    test "nursery fork after failure noop" nursery_fork_after_failure_noop;
    test "nursery check reports failure" nursery_check_reports_failure;
    test "nursery chaos kill is not failure" nursery_kill_is_not_failure;
  ]
