(* The stack-policy lab: chunked-segment arithmetic, clone
   independence under copy-on-write sharing, stack-cache accounting
   invariants, cross-policy machine equivalence (one-shot and
   multishot), DWARF unwinding across chunk boundaries, and the
   conformance campaign's policy-differential and multishot modes. *)

module F = Retrofit_fiber
module D = Retrofit_dwarf
module C = Retrofit_conformance
module Counter = Retrofit_util.Counter

let test name f = Alcotest.test_case name `Quick f

let policies =
  F.Stack_policy.[ copy_double; segmented; segmented_cow; large_reserve ]

(* ------------------------------------------------------------------ *)
(* Segment/chunk arithmetic. *)

(* reserve/committed/ext shapes that stay small enough to fill word by
   word *)
let seg_shape =
  QCheck.make
    ~print:(fun (r, c, e, base) ->
      Printf.sprintf "reserve=%d committed=%d ext=%d base=%d" r c e base)
    QCheck.Gen.(
      let* ext = int_range 1 17 in
      let* committed = int_range 1 40 in
      let* extra = int_range 0 12 in
      let* base = int_range 0 1000 in
      return (committed + (extra * ext), committed, ext, base))

let build_extended (reserve, committed, ext, base) =
  let seg = F.Segment.create_reserved ~base ~reserve ~committed ~ext_words:ext in
  while F.Segment.can_extend seg do
    F.Segment.extend seg (Array.make ext 0)
  done;
  seg

let prop_word_accounting =
  QCheck.Test.make ~name:"chunk-list word accounting" ~count:300 seg_shape
    (fun shape ->
      let seg = build_extended shape in
      let reserve, committed, ext, base = shape in
      F.Segment.size seg = F.Segment.top seg - F.Segment.limit seg
      && F.Segment.size seg = committed + (F.Segment.ext_count seg * ext)
      && F.Segment.reserve seg = reserve
      && F.Segment.limit seg >= base
      (* no further chunk fits: the committed region is maximal *)
      && not (F.Segment.can_extend seg))

let prop_no_overlap =
  QCheck.Test.make ~name:"chunks do not overlap (address bijection)" ~count:300
    seg_shape (fun shape ->
      let seg = build_extended shape in
      let lo = F.Segment.limit seg and hi = F.Segment.top seg in
      (* write each address's own value everywhere, then read it all
         back: any aliasing between chunks would clobber some cell *)
      for a = lo to hi - 1 do
        F.Segment.write seg a (a * 3)
      done;
      let ok = ref true in
      for a = lo to hi - 1 do
        if F.Segment.read seg a <> a * 3 then ok := false
      done;
      !ok)

let prop_boundary_roundtrip =
  QCheck.Test.make ~name:"boundary addresses round-trip; outside raises"
    ~count:300 seg_shape (fun shape ->
      let seg = build_extended shape in
      let lo = F.Segment.limit seg and hi = F.Segment.top seg in
      let raises a =
        match F.Segment.read seg a with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      F.Segment.write seg lo 41;
      let lo_ok = F.Segment.read seg lo = 41 in
      F.Segment.write seg (hi - 1) 43;
      lo_ok
      && F.Segment.read seg (hi - 1) = 43
      && F.Segment.contains seg lo
      && F.Segment.contains seg (hi - 1)
      && (not (F.Segment.contains seg (lo - 1)))
      && (not (F.Segment.contains seg hi))
      && raises (lo - 1) && raises hi)

(* ------------------------------------------------------------------ *)
(* Clone independence. *)

let prop_clone_independence =
  QCheck.Test.make ~name:"mutating a clone never perturbs its sibling"
    ~count:300
    QCheck.(pair seg_shape (list_of_size Gen.(int_range 1 30) (int_bound 1000)))
    (fun (shape, writes) ->
      let seg = build_extended shape in
      let lo = F.Segment.limit seg and hi = F.Segment.top seg in
      for a = lo to hi - 1 do
        F.Segment.write seg a (a * 7)
      done;
      let _, _, _, base = shape in
      let clone_base = base + 100_000 in
      let clone = F.Segment.share_clone seg ~base:clone_base in
      let delta = F.Segment.top clone - F.Segment.top seg in
      (* interleave writes to both sides at derived addresses *)
      List.iteri
        (fun i w ->
          let a = lo + (w mod (hi - lo)) in
          if i mod 2 = 0 then F.Segment.write clone (a + delta) (-w - 1)
          else F.Segment.write seg a (w * 11))
        writes;
      (* sibling words not written through [seg] still read the
         original pattern *)
      let written_orig =
        List.filteri (fun i _ -> i mod 2 = 1) writes
        |> List.map (fun w -> lo + (w mod (hi - lo)))
      in
      let ok = ref true in
      for a = lo to hi - 1 do
        if not (List.mem a written_orig) && F.Segment.read seg a <> a * 7 then
          ok := false
      done;
      (* and clone words not written through [clone] read it too *)
      let written_clone =
        List.filteri (fun i _ -> i mod 2 = 0) writes
        |> List.map (fun w -> lo + (w mod (hi - lo)) + delta)
      in
      for a = lo + delta to hi + delta - 1 do
        if
          (not (List.mem a written_clone))
          && F.Segment.read clone a <> (a - delta) * 7
        then ok := false
      done;
      !ok)

let clone_cow_notify () =
  let seg = F.Segment.create_reserved ~base:0 ~reserve:64 ~committed:16 ~ext_words:16 in
  F.Segment.extend seg (Array.make 16 0);
  let clone = F.Segment.share_clone seg ~base:1000 in
  let copied = ref 0 in
  F.Segment.set_notify_cow clone (fun words -> copied := !copied + words);
  Alcotest.(check bool) "not private while shared" false (F.Segment.fully_private seg);
  (* first write to each shared chunk privatizes it exactly once *)
  let top = F.Segment.top clone in
  F.Segment.write clone (top - 1) 1;
  F.Segment.write clone (top - 2) 2;
  Alcotest.(check int) "head privatized once" 16 !copied;
  F.Segment.write clone (F.Segment.limit clone) 3;
  Alcotest.(check int) "chunk privatized once" 32 !copied;
  F.Segment.write clone (F.Segment.limit clone) 4;
  Alcotest.(check int) "no recopy on second write" 32 !copied;
  Alcotest.(check bool) "clone private after privatizing" true
    (F.Segment.fully_private clone);
  Alcotest.(check bool) "original private again" true (F.Segment.fully_private seg)

(* ------------------------------------------------------------------ *)
(* Stack-cache accounting. *)

type cache_op = Put of int | Take of int

let cache_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function Put n -> Printf.sprintf "put %d" n | Take n -> Printf.sprintf "take %d" n)
           ops))
    QCheck.Gen.(
      list_size (int_range 1 60)
        (let* size = int_range 1 5 in
         let* put = bool in
         return (if put then Put (size * 16) else Take (size * 16))))

let prop_cache_invariants =
  QCheck.Test.make ~name:"stack-cache accounting invariants" ~count:300
    QCheck.(pair cache_ops (int_bound 4))
    (fun (ops, cap_bucket) ->
      let max_total_words = 128 in
      let cache =
        F.Stack_cache.create ~max_per_bucket:(cap_bucket + 1) ~max_total_words ()
      in
      let next_base = ref 0 in
      List.iter
        (function
          | Put size ->
              let seg = F.Segment.create ~base:!next_base ~size in
              next_base := !next_base + size + 8;
              F.Stack_cache.put cache ~size seg
          | Take size -> ignore (F.Stack_cache.take cache ~size))
        ops;
      let s = F.Stack_cache.stats cache in
      s.F.Stack_cache.hits + s.F.Stack_cache.misses = s.F.Stack_cache.lookups
      && F.Stack_cache.total_words cache <= max_total_words
      && s.F.Stack_cache.puts - s.F.Stack_cache.hits
         = F.Stack_cache.population cache
      && (let words = ref 0 in
          F.Stack_cache.iter cache (fun seg -> words := !words + F.Segment.size seg);
          !words = F.Stack_cache.total_words cache))

(* Taking from the cache must never return a segment still shared with
   a live clone, under any policy: the machine only recycles fully
   private segments. *)
let cache_only_private () =
  List.iter
    (fun pol ->
      let cfg =
        F.Config.with_multishot true (F.Config.with_policy pol F.Config.mc)
      in
      match
        F.Machine.run ~cfuns:[] cfg (F.Compile.compile (F.Programs.nqueens ~n:4))
      with
      | F.Machine.Done v, _ -> Alcotest.(check int) "nqueens 4" 2 v
      | o, _ ->
          Alcotest.failf "nqueens under %s: unexpected %s" (F.Stack_policy.name pol)
            (match o with
            | F.Machine.Uncaught (l, _) -> "uncaught " ^ l
            | F.Machine.Fatal m -> "fatal " ^ m
            | _ -> "?"))
    policies

(* ------------------------------------------------------------------ *)
(* Cross-policy machine equivalence. *)

let run cfg ?(cfuns = F.Programs.standard_cfuns) p =
  match F.Machine.run ~cfuns cfg (F.Compile.compile p) with
  | F.Machine.Done v, c -> (Printf.sprintf "Done %d" v, c)
  | F.Machine.Uncaught (l, v), c -> (Printf.sprintf "Uncaught %s %d" l v, c)
  | F.Machine.Fatal m, _ -> Alcotest.failf "fatal: %s" m

let oneshot_programs =
  [
    ("fib", F.Programs.fib ~n:12);
    ("deep_recursion", F.Programs.deep_recursion ~depth:3000);
    ("effect_roundtrip", F.Programs.effect_roundtrip ~iters:50);
    ("effect_depth", F.Programs.effect_depth ~depth:5 ~iters:5);
    ("counter_effect", F.Programs.counter_effect ~upto:10);
    ("exnraise", F.Programs.exnraise ~iters:50);
    ("callback", F.Programs.callback ~iters:50);
    ("discontinue", F.Programs.discontinue_cleanup);
    ("cross_resume", F.Programs.cross_resume);
    ("one_shot_violation", F.Programs.one_shot_violation);
    ("unhandled_effect", F.Programs.unhandled_effect);
  ]

let policy_outcomes_agree () =
  List.iter
    (fun (name, p) ->
      let base, _ = run F.Config.mc p in
      List.iter
        (fun pol ->
          let got, _ = run (F.Config.with_policy pol F.Config.mc) p in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s" name (F.Stack_policy.name pol))
            base got)
        policies)
    oneshot_programs

let multishot_outcomes_agree () =
  let ms pol = F.Config.with_multishot true (F.Config.with_policy pol F.Config.mc) in
  List.iter
    (fun pol ->
      let got, _ = run (ms pol) F.Programs.multishot_choice ~cfuns:[] in
      Alcotest.(check string)
        (Printf.sprintf "multishot_choice under %s" (F.Stack_policy.name pol))
        "Done 30" got)
    policies;
  List.iter
    (fun (n, want) ->
      List.iter
        (fun pol ->
          let got, _ = run (ms pol) (F.Programs.nqueens ~n) ~cfuns:[] in
          Alcotest.(check string)
            (Printf.sprintf "nqueens %d under %s" n (F.Stack_policy.name pol))
            (Printf.sprintf "Done %d" want) got)
        policies)
    [ (4, 2); (5, 10); (6, 4) ]

(* The chunk pool and COW sharing must not leak accounting: under
   segmented-cow, deferred copies replace the eager words_copied. *)
let cow_defers_copies () =
  let ms pol = F.Config.with_multishot true (F.Config.with_policy pol F.Config.mc) in
  let _, eager = run (ms F.Stack_policy.segmented) (F.Programs.nqueens ~n:5) ~cfuns:[] in
  let _, cow = run (ms F.Stack_policy.segmented_cow) (F.Programs.nqueens ~n:5) ~cfuns:[] in
  Alcotest.(check bool) "eager clone copies words" true
    (Counter.get eager "words_copied" > 0);
  Alcotest.(check int) "cow clone copies nothing eagerly" 0
    (Counter.get cow "words_copied");
  Alcotest.(check bool) "cow pays per privatized chunk" true
    (Counter.get cow "cow_words" > 0);
  Alcotest.(check bool) "sharing beats eager copying" true
    (Counter.get cow "cow_words" < Counter.get eager "words_copied");
  Alcotest.(check int) "every clone is shared" (Counter.get eager "cont_copy")
    (Counter.get cow "cont_share")

(* ------------------------------------------------------------------ *)
(* DWARF unwinding across segment boundaries. *)

let dwarf_unwinds_chunked_stacks () =
  List.iter
    (fun pol ->
      List.iter
        (fun (name, p) ->
          let cfg = F.Config.with_policy pol F.Config.mc in
          let compiled = F.Compile.compile p in
          let _, report =
            D.Validate.run_validated ~cfuns:F.Programs.standard_cfuns cfg compiled
          in
          (match report.D.Validate.mismatches with
          | [] -> ()
          | (ctx, unwound, shadow) :: _ ->
              Alcotest.failf "%s under %s: %s\n  unwound: %s\n  shadow: %s" name
                (F.Stack_policy.name pol) ctx (String.concat ";" unwound)
                (String.concat ";" shadow));
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s probed" name (F.Stack_policy.name pol))
            true
            (report.D.Validate.probes > 0))
        [
          (* deep recursion guarantees extension chunks, so unwinding
             crosses chunk boundaries *)
          ("deep_recursion", F.Programs.deep_recursion ~depth:2000);
          ("effect_depth", F.Programs.effect_depth ~depth:4 ~iters:3);
        ])
    policies

(* ------------------------------------------------------------------ *)
(* Conformance: policy differential and multishot campaigns. *)

let policy_differential_campaign () =
  let stats =
    C.Fuzz.campaign ~policies:C.Fuzz.default_policies ~seed:11 ~count:60
      ~dwarf:false ()
  in
  (match stats.C.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "policy diff:\n%s" (C.Fuzz.failure_to_string f));
  List.iter
    (fun (name, n) ->
      Alcotest.(check bool)
        (name ^ " policy ran")
        true
        (n + List.assoc name stats.C.Fuzz.policy_skips = 60))
    stats.C.Fuzz.policy_agreements

let multishot_campaign_agrees () =
  let fiber_config = F.Config.with_multishot true F.Config.mc in
  let stats =
    C.Fuzz.campaign ~fiber_config ~multishot:true
      ~policies:C.Fuzz.default_policies ~seed:42 ~count:120 ~dwarf:false ()
  in
  (match stats.C.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "multishot diff:\n%s" (C.Fuzz.failure_to_string f));
  (* the native leg is one-shot, so every native pair must be skipped *)
  Alcotest.(check int) "native pairs skipped" 120
    (List.assoc "fiber<->native" stats.C.Fuzz.skips);
  Alcotest.(check bool) "sem<->fiber checked" true
    (List.assoc "semantics<->fiber" stats.C.Fuzz.agreements > 0)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* the satellite fix: a multishot campaign against a one-shot fiber
   configuration must refuse loudly instead of silently generating
   programs the backend then rejects *)
let multishot_requires_capable_config () =
  match C.Fuzz.campaign ~multishot:true ~seed:1 ~count:1 () with
  | _ -> Alcotest.fail "expected Invalid_argument, campaign ran"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names multishot" true
        (contains (String.lowercase_ascii msg) "multishot")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_word_accounting;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_boundary_roundtrip;
    QCheck_alcotest.to_alcotest prop_clone_independence;
    test "cow privatizes a shared chunk exactly once" clone_cow_notify;
    QCheck_alcotest.to_alcotest prop_cache_invariants;
    test "multishot clones recycle safely through the cache" cache_only_private;
    test "all policies agree on one-shot programs" policy_outcomes_agree;
    test "all policies agree on multishot programs" multishot_outcomes_agree;
    test "cow sharing defers and reduces clone copies" cow_defers_copies;
    test "dwarf unwinds chunked stacks under every policy" dwarf_unwinds_chunked_stacks;
    test "policy-differential campaign is clean" policy_differential_campaign;
    test "multishot campaign agrees sem<->fiber across policies" multishot_campaign_agrees;
    test "multishot campaign refuses a one-shot config" multishot_requires_capable_config;
  ]
