(* The aggregated test runner: one alcotest suite per library area.

   `dune runtest` runs everything, including the Slow experiment tests;
   set ALCOTEST_QUICK_TESTS=1 to restrict to the quick ones. *)

let () =
  Alcotest.run "retrofit"
    [
      ("util.vec", Test_vec.suite);
      ("util", Test_util.suite);
      ("regex", Test_regex.suite);
      ("semantics", Test_semantics.suite);
      ("fiber", Test_fiber.suite);
      ("fiber.frozen", Test_frozen.suite);
      ("fiber.policy", Test_policy.suite);
      ("dwarf", Test_dwarf.suite);
      ("trace", Test_trace.suite);
      ("metrics", Test_metrics.suite);
      ("core", Test_core.suite);
      ("conformance", Test_conformance.suite);
      ("monad", Test_monad.suite);
      ("gen", Test_gen.suite);
      ("httpsim", Test_httpsim.suite);
      ("macro", Test_macro.suite);
      ("micro", Test_micro.suite);
      ("crosslevel", Test_crosslevel.suite);
      ("experiments", Test_experiments.suite);
      ("analysis", Test_analysis.suite);
      ("analysis.resolve", Test_resolve.suite);
      ("causal", Test_causal.suite);
      ("supervise", Test_supervise.suite);
    ]
