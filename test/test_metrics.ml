module Metrics = Retrofit_metrics.Metrics
module Histogram = Retrofit_util.Histogram
module Counter = Retrofit_util.Counter

let test name f = Alcotest.test_case name `Quick f

(* run a callback against a fresh enabled registry *)
let with_registry f = Metrics.scoped ~r:(Metrics.create ()) f

let counters_and_gauges () =
  with_registry (fun r ->
      Metrics.inc ~r "reqs";
      Metrics.inc ~r ~by:4 "reqs";
      Metrics.inc ~r ~labels:[ ("model", "seq") ] "reqs";
      Metrics.set_gauge ~r "depth" 7;
      Metrics.set_gauge ~r "depth" 3;
      Alcotest.(check int) "unlabelled counter" 5 (Metrics.get ~r "reqs");
      Alcotest.(check int) "labelled counter distinct" 1
        (Metrics.get ~r ~labels:[ ("model", "seq") ] "reqs");
      Alcotest.(check int) "gauge keeps last value" 3 (Metrics.get ~r "depth");
      Alcotest.(check int) "absent reads as zero" 0 (Metrics.get ~r "nope"))

let label_order_insensitive () =
  with_registry (fun r ->
      Metrics.inc ~r ~labels:[ ("a", "1"); ("b", "2") ] "c";
      Metrics.inc ~r ~labels:[ ("b", "2"); ("a", "1") ] "c";
      Alcotest.(check int) "both orders hit one instrument" 2
        (Metrics.get ~r ~labels:[ ("a", "1"); ("b", "2") ] "c"))

let kind_collision_rejected () =
  with_registry (fun r ->
      Metrics.inc ~r "x";
      Alcotest.(check bool) "counter reused as gauge rejected" true
        (match Metrics.set_gauge ~r "x" 1 with
        | () -> false
        | exception Invalid_argument _ -> true))

let observe_quantiles () =
  with_registry (fun r ->
      for v = 1 to 100 do
        Metrics.observe ~r "lat" (v * 1000)
      done;
      Alcotest.(check int) "histogram count via get" 100 (Metrics.get ~r "lat");
      match Metrics.snapshot ~r () with
      | [ { Metrics.name = "lat"; labels = []; value = Hist_v { count; p50; p99; _ } } ] ->
          Alcotest.(check int) "count" 100 count;
          Alcotest.(check bool) "p50 near the middle" true
            (p50 >= 45_000 && p50 <= 55_000);
          Alcotest.(check bool) "p99 near the top" true
            (p99 >= 95_000 && p99 <= 100_100)
      | s -> Alcotest.failf "unexpected snapshot shape (%d samples)" (List.length s))

let observe_histogram_copies () =
  with_registry (fun r ->
      let h = Histogram.create ~max_value:10_000 () in
      Histogram.record h 10;
      Histogram.record h 20;
      Metrics.observe_histogram ~r "lat" h;
      (* mutating the source afterwards must not leak into the registry *)
      Histogram.record h 30;
      Alcotest.(check int) "registry kept a copy" 2 (Metrics.get ~r "lat");
      Metrics.observe_histogram ~r "lat" h;
      Alcotest.(check int) "second observation merges" 5 (Metrics.get ~r "lat"))

let merge_counter_table_prefixes () =
  with_registry (fun r ->
      let c = Counter.create () in
      Counter.add c "switch" 3;
      Counter.add c "grow" 1;
      Metrics.merge_counter_table ~r ~prefix:"fiber_" c;
      Alcotest.(check int) "prefixed" 3 (Metrics.get ~r "fiber_switch");
      Alcotest.(check int) "prefixed 2" 1 (Metrics.get ~r "fiber_grow");
      Metrics.merge_counter_table ~r ~prefix:"fiber_" c;
      Alcotest.(check int) "merging adds" 6 (Metrics.get ~r "fiber_switch"))

let snapshot_sorted_deterministic () =
  with_registry (fun r ->
      Metrics.inc ~r "zeta";
      Metrics.inc ~r "alpha";
      Metrics.inc ~r ~labels:[ ("m", "b") ] "alpha";
      Metrics.inc ~r ~labels:[ ("m", "a") ] "alpha";
      let names =
        List.map
          (fun (s : Metrics.sample) -> (s.name, s.labels))
          (Metrics.snapshot ~r ())
      in
      Alcotest.(check bool) "sorted by name then labels" true
        (names
        = [
            ("alpha", []);
            ("alpha", [ ("m", "a") ]);
            ("alpha", [ ("m", "b") ]);
            ("zeta", []);
          ]);
      Alcotest.(check string) "exposition is reproducible"
        (Metrics.to_prometheus ~r ()) (Metrics.to_prometheus ~r ()))

let prometheus_format () =
  with_registry (fun r ->
      Metrics.inc ~r ~labels:[ ("model", "seq") ] ~by:2 "httpsim_requests_total";
      Metrics.set_gauge ~r "depth" 4;
      Metrics.observe ~r "lat" 1000;
      let text = Metrics.to_prometheus ~r () in
      let has line =
        List.exists (fun l -> l = line) (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "TYPE counter" true
        (has "# TYPE httpsim_requests_total counter");
      Alcotest.(check bool) "labelled sample" true
        (has "httpsim_requests_total{model=\"seq\"} 2");
      Alcotest.(check bool) "TYPE gauge" true (has "# TYPE depth gauge");
      Alcotest.(check bool) "gauge sample" true (has "depth 4");
      Alcotest.(check bool) "histogram count" true (has "lat_count 1"))

let disabled_mutators_are_noops () =
  Alcotest.(check bool) "off by default" false (Metrics.on ());
  let r = Metrics.create () in
  Metrics.inc ~r "x";
  Metrics.set_gauge ~r "g" 5;
  Metrics.observe ~r "h" 10;
  Alcotest.(check (list string)) "nothing registered while disabled" []
    (List.map (fun (s : Metrics.sample) -> s.name) (Metrics.snapshot ~r ()))

let scoped_restores () =
  let (_ : unit) = with_registry (fun _ -> ()) in
  Alcotest.(check bool) "disabled again after scope" false (Metrics.on ());
  with_registry (fun r1 ->
      let (_ : unit) = with_registry (fun _ -> ()) in
      Alcotest.(check bool) "still enabled in outer scope" true (Metrics.on ());
      Metrics.inc ~r:r1 "x";
      Alcotest.(check int) "outer registry usable after inner scope" 1
        (Metrics.get ~r:r1 "x"))

let reset_clears () =
  with_registry (fun r ->
      Metrics.inc ~r "x";
      Metrics.reset r;
      Alcotest.(check int) "cleared" 0 (Metrics.get ~r "x");
      Alcotest.(check (list string)) "no samples" []
        (List.map (fun (s : Metrics.sample) -> s.name) (Metrics.snapshot ~r ())))

let suite =
  [
    test "counters and gauges" counters_and_gauges;
    test "label order insensitive" label_order_insensitive;
    test "kind collision rejected" kind_collision_rejected;
    test "observe quantiles" observe_quantiles;
    test "observe_histogram copies then merges" observe_histogram_copies;
    test "merge_counter_table prefixes" merge_counter_table_prefixes;
    test "snapshot sorted and deterministic" snapshot_sorted_deterministic;
    test "prometheus exposition format" prometheus_format;
    test "disabled mutators are no-ops" disabled_mutators_are_noops;
    test "scoped enable restores" scoped_restores;
    test "reset clears the registry" reset_clears;
  ]
