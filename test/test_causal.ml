(* Causal span-graph tests (ISSUE 9): determinism of the report bytes,
   the bucket-sum attribution invariant, wraparound safety, Chrome flow
   events, and the golden report the CI job diffs. *)

module HS = Retrofit_httpsim
module Causal = Retrofit_causal
module Trace = Retrofit_trace.Trace
module Export = Retrofit_trace.Export
module Metrics = Retrofit_metrics.Metrics
module C = Retrofit_core

let test name f = Alcotest.test_case name `Quick f

(* The same pipeline as `retrofit causal`: seeded resilient websim under
   a scoped ring, then reconstruction. *)
let capture ?(capacity = 1 lsl 18) ?(seed = 42) ?(faults = 0.5)
    ?(queue_cap = 512) ?(rate = 5_000) ?(duration = 300) () =
  let m, process = List.hd HS.Experiment.servers in
  let fault_rates = HS.Faults.scale faults HS.Faults.default in
  let resilience = { HS.Loadgen.default_resilience with queue_cap } in
  let _outcome, ring =
    Trace.scoped ~capacity (fun () ->
        HS.Loadgen.run ~seed ~faults:fault_rates ~resilience ~model:m ~process
          ~rate_rps:rate ~duration_ms:duration ())
  in
  ring

let report_of ring = Causal.Report.render (Causal.Reconstruct.of_trace ring)

(* (a) two identical seeded faulted runs -> byte-identical reports *)
let deterministic_report () =
  let r1 = report_of (capture ()) and r2 = report_of (capture ()) in
  Alcotest.(check string) "reports byte-identical" r1 r2;
  Alcotest.(check bool) "report is not trivial" true
    (String.length r1 > 500)

(* (b) the supervised websim (chaos + nursery scopes) traces
   deterministically too: double-run, compare report bytes *)
let supervised_deterministic () =
  let run () =
    let cfg = HS.Supervised.default_config ~seed:11 in
    let cfg =
      {
        cfg with
        HS.Supervised.connections = 40;
        chaos =
          Some
            {
              (C.Sched.Chaos.default ~seed:5) with
              C.Sched.Chaos.kill_rate = 0.002;
            };
        wedge_rate = 0.05;
      }
    in
    let summary, ring =
      Trace.scoped ~capacity:(1 lsl 16) (fun () -> HS.Supervised.run cfg)
    in
    (summary.HS.Supervised.total, report_of ring)
  in
  let t1, r1 = run () and t2, r2 = run () in
  Alcotest.(check int) "same request totals" t1 t2;
  Alcotest.(check string) "supervised reports byte-identical" r1 r2;
  let g =
    Causal.Reconstruct.of_trace
      (snd
         (Trace.scoped ~capacity:(1 lsl 16) (fun () ->
              HS.Supervised.run
                {
                  (HS.Supervised.default_config ~seed:11) with
                  HS.Supervised.connections = 40;
                })))
  in
  Alcotest.(check bool) "nursery scopes were traced" true
    (g.Causal.Graph.summary.g_nursery_spans > 0)

(* (c) property: for EVERY complete request the five buckets sum exactly
   to its latency, and the critical path tiles [arrival, done] with no
   gaps or overlaps *)
let buckets_sum_to_latency () =
  let g = Causal.Reconstruct.of_trace (capture ()) in
  let open Causal.Graph in
  Alcotest.(check bool) "have requests" true (g.summary.g_complete > 100);
  List.iter
    (fun r ->
      if buckets_sum r.r_buckets <> latency r then
        Alcotest.failf "req %d: buckets sum %d <> latency %d" r.r_id
          (buckets_sum r.r_buckets) (latency r);
      (match r.r_path with
      | [] -> Alcotest.failf "req %d: empty critical path" r.r_id
      | first :: _ ->
          if first.s_t0 <> r.r_arrival then
            Alcotest.failf "req %d: path starts after arrival" r.r_id);
      let last_t1 =
        List.fold_left
          (fun prev s ->
            if s.s_t0 <> prev then
              Alcotest.failf "req %d: gap/overlap at %d" r.r_id s.s_t0;
            if s.s_t1 <= s.s_t0 then
              Alcotest.failf "req %d: empty segment at %d" r.r_id s.s_t0;
            s.s_t1)
          r.r_arrival r.r_path
      in
      if last_t1 <> r.r_done then
        Alcotest.failf "req %d: path ends at %d, done at %d" r.r_id last_t1
          r.r_done)
    g.requests

(* (c') drill-down sanity on aggregated edges: service time is the
   running+gc+slow total, every stat is positive *)
let edges_consistent () =
  let g = Causal.Reconstruct.of_trace (capture ()) in
  let edges = Causal.Reconstruct.critical_edges g in
  Alcotest.(check bool) "several edge kinds" true (List.length edges >= 3);
  List.iter
    (fun (e : Causal.Graph.edge_stat) ->
      Alcotest.(check bool) (e.e_kind ^ " count > 0") true (e.e_count > 0);
      Alcotest.(check bool) (e.e_kind ^ " max <= total") true
        (e.e_max <= e.e_total))
    edges;
  let total kind =
    match
      List.find_opt (fun (e : Causal.Graph.edge_stat) -> e.e_kind = kind) edges
    with
    | Some e -> e.e_total
    | None -> 0
  in
  let open Causal.Graph in
  let b =
    List.fold_left
      (fun acc r ->
        {
          b_running = acc.b_running + r.r_buckets.b_running;
          b_sched = acc.b_sched + r.r_buckets.b_sched;
          b_io = acc.b_io + r.r_buckets.b_io;
          b_gc = acc.b_gc + r.r_buckets.b_gc;
          b_fault = acc.b_fault + r.r_buckets.b_fault;
        })
      { b_running = 0; b_sched = 0; b_io = 0; b_gc = 0; b_fault = 0 }
      g.requests
  in
  Alcotest.(check int) "service edge = running + gc + backend-slow"
    (total "service" + total "gc-pause" + total "backend-slow")
    (b.b_running + b.b_gc
    + List.fold_left
        (fun acc r ->
          List.fold_left (fun a (s : attempt_span) -> a + s.a_slow) acc
            r.r_attempts)
        0 g.requests);
  Alcotest.(check int) "queue edge = sched bucket" (total "queue") b.b_sched

(* (satellite) wraparound: an undersized ring truncates old requests
   into incomplete_spans; the survivors still satisfy the invariant *)
let wraparound_safe () =
  let ring = capture ~capacity:2048 ~rate:20_000 ~faults:1.0 ~seed:7 () in
  let g = Causal.Reconstruct.of_trace ring in
  let open Causal.Graph in
  Alcotest.(check bool) "events were dropped" true (g.summary.g_dropped > 0);
  Alcotest.(check int) "ring clamped" 2048 g.summary.g_events;
  Alcotest.(check bool) "some requests truncated" true
    (g.summary.g_incomplete > 0);
  Alcotest.(check bool) "some requests survive the window" true
    (g.summary.g_complete > 0);
  Alcotest.(check int) "complete + incomplete = requests"
    g.summary.g_requests
    (g.summary.g_complete + g.summary.g_incomplete);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "req %d invariant" r.r_id)
        (latency r) (buckets_sum r.r_buckets))
    g.requests;
  (* the report renders without raising even when nothing is complete *)
  let tiny = capture ~capacity:64 ~rate:20_000 ~faults:1.0 ~seed:7 () in
  let s = Causal.Report.render (Causal.Reconstruct.of_trace tiny) in
  Alcotest.(check bool) "tiny-ring report renders" true (String.length s > 0)

(* (tentpole surface) flow events: with_flows output passes the Chrome
   schema checker, and every complete request contributes one s..f chain *)
let flows_validate () =
  let ring = capture ~rate:2_000 ~duration:120 () in
  let g = Causal.Reconstruct.of_trace ring in
  let events = Causal.Reconstruct.with_flows (Trace.to_list ring) g in
  let json = Export.to_chrome ~dropped:(Trace.dropped ring) events in
  (match Export.validate_chrome json with
  | Ok n ->
      Alcotest.(check bool) "validator saw the flow events" true
        (n > List.length (Trace.to_list ring))
  | Error e -> Alcotest.failf "chrome schema: %s" e);
  let count step =
    List.length
      (List.filter
         (fun (e : Retrofit_trace.Event.t) ->
           match e.ev with
           | Retrofit_trace.Event.Flow { step = s; _ } -> s = step
           | _ -> false)
         events)
  in
  let open Retrofit_trace.Event in
  Alcotest.(check int) "one flow start per complete request"
    g.Causal.Graph.summary.g_complete (count Flow_start);
  Alcotest.(check int) "one flow end per complete request"
    g.Causal.Graph.summary.g_complete (count Flow_end);
  Alcotest.(check bool) "flow steps present" true (count Flow_step > 0)

(* (satellite) scheduler_runnable_wait_ns lands in the registry when
   both tracing and metrics are on *)
let runnable_wait_metric () =
  (* the scheduler's internal observe targets the default registry *)
  Metrics.scoped (fun r ->
      let before = Metrics.get ~r "scheduler_runnable_wait_ns" in
      C.Sched.run (fun () ->
          for _ = 1 to 4 do
            C.Sched.fork (fun () -> C.Sched.yield ())
          done;
          C.Sched.yield ());
      Alcotest.(check bool) "histogram observed" true
        (Metrics.get ~r "scheduler_runnable_wait_ns" > before))

(* (satellite) golden: the Prometheus exposition of a fixed registry is
   byte-stable, including sample ordering *)
let metrics_golden () =
  let ic = open_in "golden/metrics.golden" in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  let got =
    Metrics.scoped ~r:(Metrics.create ()) (fun r ->
        Metrics.inc ~r ~labels:[ ("model", "mc") ] ~by:3 "httpsim_requests_total";
        Metrics.inc ~r ~labels:[ ("model", "go") ] ~by:2 "httpsim_requests_total";
        Metrics.inc ~r ~by:7 "profile_wait_samples_total";
        (* the fuzz campaign's handler-resolution census *)
        Metrics.inc ~r ~labels:[ ("class", "mono") ] ~by:4
          "perform_site_resolution_total";
        Metrics.inc ~r ~labels:[ ("class", "poly") ] ~by:2
          "perform_site_resolution_total";
        Metrics.inc ~r ~labels:[ ("class", "mega") ]
          "perform_site_resolution_total";
        Metrics.set_gauge ~r "queue_depth" 5;
        List.iter
          (fun v ->
            Metrics.observe ~r ~max_value:1_000_000_000
              "scheduler_runnable_wait_ns" v)
          [ 120; 450; 90_000; 1_200_000 ];
        Metrics.to_prometheus ~r ())
  in
  Alcotest.(check string) "prometheus exposition matches golden" want got

(* (CI surface) golden: the causal report for the canonical seeded run.
   Regenerate with:
     dune exec bin/retrofit.exe -- causal --rate 5000 --duration 300 \
       --faults 0.5 --seed 42 > test/golden/causal.golden *)
let causal_golden () =
  let ic = open_in "golden/causal.golden" in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  let g = Causal.Reconstruct.of_trace (capture ()) in
  Alcotest.(check string) "causal report matches golden" want
    (Causal.Report.render ~top:8 g)

let suite =
  [
    test "report is deterministic across runs" deterministic_report;
    test "supervised chaos run is deterministic" supervised_deterministic;
    test "buckets sum to latency on every request" buckets_sum_to_latency;
    test "critical-path edges are consistent" edges_consistent;
    test "ring wraparound yields incomplete_spans, not lies" wraparound_safe;
    test "flow events pass the chrome schema" flows_validate;
    test "runnable-wait histogram is recorded" runnable_wait_metric;
    test "prometheus exposition golden" metrics_golden;
    test "causal report golden" causal_golden;
  ]
