(* Chaos harness CLI.

   Runs the seeded chaos campaign over the supervised websim (each
   scenario executed twice and byte-compared — the determinism gate),
   plus optional focused drain and recovery demonstrations.  Exit code
   0 only when every scenario is deterministic and invariant-clean, so
   CI can gate on it directly. *)

module C = Retrofit_conformance
module Sim = Retrofit_httpsim.Supervised
module Server = Retrofit_httpsim.Server
module Sched = Retrofit_core.Sched

let drain_demo ~seed =
  let base = Sim.default_config ~seed in
  let cfg =
    {
      base with
      Sim.connections = 40;
      drain_after_ns = Some 400_000;
      drain_deadline_ns = 2_000_000;
    }
  in
  let s = Sim.run cfg in
  Printf.printf "drain: %s\n" (Sim.summary_to_string s);
  s.Sim.silent = 0 && Sim.accounted s = s.Sim.total

let recovery_demo ~seed =
  let base = Sim.default_config ~seed in
  let calm = Sim.run { base with Sim.wedge_rate = 0.0 } in
  let chaos =
    Sim.run
      {
        base with
        Sim.chaos = Some (Sched.Chaos.default ~seed);
        wedge_rate = 0.05;
        max_restarts = 1000;
      }
  in
  let pct =
    100.0 *. float_of_int chaos.Sim.completed /. float_of_int calm.Sim.completed
  in
  Printf.printf "calm : %s\n" (Sim.summary_to_string calm);
  Printf.printf "chaos: %s\n" (Sim.summary_to_string chaos);
  Printf.printf "recovery: %.1f%% of calm throughput (restarts=%d)\n" pct
    chaos.Sim.restarts;
  pct >= 95.0 && chaos.Sim.silent = 0

let () =
  let seed = ref 1 in
  let count = ref 1000 in
  let smoke = ref false in
  let drain = ref false in
  let recovery = ref false in
  let speclist =
    [
      ("--seed", Arg.Set_int seed, "INT campaign seed (default 1)");
      ("--count", Arg.Set_int count, "INT scenarios (default 1000)");
      ("--smoke", Arg.Set smoke, " quick 50-scenario pass");
      ("--drain", Arg.Set drain, " also run the graceful-drain demonstration");
      ( "--recovery",
        Arg.Set recovery,
        " also check supervised throughput under chaos recovers to >=95% of \
         the calm baseline" );
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "chaos [options]";
  if !smoke then count := 50;
  let failed = ref false in
  let st = C.Chaos.campaign ~count:!count ~seed:!seed () in
  print_string (C.Chaos.stats_to_string st);
  if st.C.Chaos.failures <> [] then failed := true;
  if !drain && not (drain_demo ~seed:!seed) then begin
    print_endline "FAIL: drain demonstration violated accounting";
    failed := true
  end;
  if !recovery && not (recovery_demo ~seed:!seed) then begin
    print_endline "FAIL: recovery below 95% (or silent drops)";
    failed := true
  end;
  exit (if !failed then 1 else 0)
