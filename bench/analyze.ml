(* Analyzer overhead benchmark: wall-clock of the full static pipeline
   (index, linearity, effect dataflow, must pass, red-zone audit)
   against actually executing the same program on the fiber machine.

   The lint is meant to run alongside the conformance campaign on every
   generated program, so the budget is relative: with --check the exit
   code enforces the documented bound that total analysis time stays
   under 20% of total execution time across the program set.  Both
   baselines are reported — the bare fiber-machine run, and the full
   differential-oracle run (three backends plus the per-step auditor)
   the campaign already pays per program, which is what the analyzer
   actually rides along with; the bound is enforced against the
   latter. *)

module C = Retrofit_conformance
module A = Retrofit_analysis
module H = Retrofit_harness

let () =
  let seed = ref 1 in
  let count = ref 300 in
  let check = ref false in
  let speclist =
    [
      ("--seed", Arg.Set_int seed, "INT generator seed (default 1)");
      ( "--count",
        Arg.Set_int count,
        "INT number of generated programs (default 300)" );
      ( "--check",
        Arg.Set check,
        " fail unless analysis time < 20% of execution time" );
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "analyze [options]";
  let programs =
    List.map (fun (e : C.Corpus.entry) -> e.C.Corpus.program) C.Corpus.entries
    @ List.init !count (fun i ->
          C.Gen.program_of_seed (C.Fuzz.prog_seed ~seed:!seed i))
  in
  (* the container's wall clock is noisy at the tens-of-microseconds
     scale, so each side is measured [reps] times per program and the
     per-program minimum kept — the minimum is the least-disturbed
     observation of a deterministic computation *)
  let reps = 3 in
  let best f =
    let t = ref Int64.max_int in
    for _ = 1 to reps do
      let x, ti = H.Clock.elapsed_ns f in
      ignore (Sys.opaque_identity x);
      if ti < !t then t := ti
    done;
    !t
  in
  let analysis_ns = ref 0L and fiber_ns = ref 0L and oracle_ns = ref 0L in
  List.iter
    (fun p ->
      (* the campaign compiles every program anyway to run it on the
         fiber machine, so the compile is charged to the execution side
         and the analyzer is measured over the shared compiled form *)
      let compiled = Retrofit_fiber.Compile.compile (C.Fiber_backend.lower p) in
      let ta = best (fun () -> C.Static.analyze ~compiled p) in
      let tl = best (fun () -> A.Redzone.audit ~red_zone:16 compiled) in
      let te = best (fun () -> C.Fiber_backend.run ~audit:false p) in
      let tor = best (fun () -> C.Oracle.run ~audit:true p) in
      analysis_ns := Int64.add !analysis_ns (Int64.add ta tl);
      fiber_ns := Int64.add !fiber_ns te;
      oracle_ns := Int64.add !oracle_ns tor)
    programs;
  let a = Int64.to_float !analysis_ns
  and e = Int64.to_float !fiber_ns
  and o = Int64.to_float !oracle_ns in
  let per t = t /. 1e3 /. float_of_int (List.length programs) in
  let ratio = a /. o in
  Printf.printf
    "programs: %d (corpus %d + generated %d)\n\
     analysis: %.2f ms total, %.1f us/program\n\
     fiber execution: %.2f ms total, %.1f us/program (%.0f%% of it)\n\
     oracle execution: %.2f ms total, %.1f us/program\n\
     campaign overhead: %.1f%% of oracle execution time\n"
    (List.length programs)
    (List.length C.Corpus.entries)
    !count (a /. 1e6) (per a) (e /. 1e6) (per e)
    (100.0 *. a /. e)
    (o /. 1e6) (per o)
    (100.0 *. ratio);
  if !check then
    if ratio < 0.20 then
      print_endline "check: ok (analysis < 20% of oracle execution)"
    else begin
      Printf.printf "check: FAILED (%.1f%% >= 20%%)\n" (100.0 *. ratio);
      exit 1
    end
