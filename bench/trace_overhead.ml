(* Eventlog overhead on the Table 1 / Table 2 microbenchmark programs
   (see DESIGN.md §10, "Overhead methodology").

   Each program is run three ways:

   - disabled: the shipped default — every instrumentation site is a
     single untaken branch;
   - enabled:  a Trace session is live and the machine emits fiber,
     effect and FFI events into the ring.

   Before timing anything, the harness asserts that the cost-counter
   sets of a disabled run and an enabled run are identical entry for
   entry: instrumentation may cost wall time when switched on, but it
   must never move a counter, or the pinned Table 1/2 outputs would
   drift.

   Usage:
     trace_overhead.exe           full sizes, one table row per program
     trace_overhead.exe --smoke   tiny sizes, single measured run (CI) *)

module F = Retrofit_fiber
module B = Retrofit_harness.Bench
module Counter = Retrofit_util.Counter
module Trace = Retrofit_trace.Trace

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

let warmups = if smoke then 0 else 2

let runs = if smoke then 1 else 5

let scale full = if smoke then max 1 (full / 20) else full

(* Table 1 (no effects) and Table 2 (handlers, perform, reperform)
   representatives.  Sizes follow Exp_table1/Exp_table2. *)
let programs =
  [
    ("fib", F.Programs.fib ~n:(if smoke then 10 else 16), []);
    ("exnraise", F.Programs.exnraise ~iters:(scale 2_000), []);
    ("extcall", F.Programs.extcall ~iters:(scale 2_000), [ F.Programs.c_identity ]);
    ("callback", F.Programs.callback ~iters:(scale 2_000), F.Programs.standard_cfuns);
    ("effects", F.Programs.effect_roundtrip ~iters:(scale 2_000), []);
    ("reperform", F.Programs.effect_depth ~depth:8 ~iters:(scale 200), []);
  ]

let assert_counters_identical name off on =
  if Counter.to_list off <> Counter.to_list on then begin
    Printf.eprintf
      "FAIL %s: enabling the eventlog changed the cost counters:\n%s\n" name
      (String.concat "\n"
         (List.map
            (fun (k, d) -> Printf.sprintf "  %-24s %+d" k d)
            (Counter.diff on off)));
    exit 1
  end

let () =
  Printf.printf "eventlog overhead, disabled vs enabled%s\n"
    (if smoke then " (smoke mode)" else "");
  Printf.printf "  %-10s %12s %12s %9s %10s\n" "program" "off ns" "on ns"
    "overhead" "events";
  List.iter
    (fun (name, prog, cfuns) ->
      let compiled = F.Compile.compile prog in
      let run () = F.Machine.run ~cfuns F.Config.mc compiled in
      let _, c_off = run () in
      let (_, c_on), ring = Trace.scoped ~capacity:(1 lsl 18) run in
      assert_counters_identical name c_off c_on;
      let off_ns = B.median_ns ~warmups ~runs (fun () -> ignore (run ())) in
      (* Session setup (one ring allocation) happens outside the timed
         region: the number reported is the steady-state emission cost,
         the figure a long-running traced service actually pays. *)
      let on_ns =
        let _ring = Trace.start ~capacity:(1 lsl 18) () in
        let ns = B.median_ns ~warmups ~runs (fun () -> ignore (run ())) in
        ignore (Trace.stop ());
        ns
      in
      Printf.printf "  %-10s %12.0f %12.0f %8.1f%% %10d\n%!" name off_ns on_ns
        ((on_ns -. off_ns) /. off_ns *. 100.0)
        (Trace.length ring + Trace.dropped ring))
    programs;
  print_endline "counters identical with the eventlog on and off: OK"
