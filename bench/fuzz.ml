(* Differential conformance fuzzer CLI.

   Replays the committed corpus first, then runs a seeded campaign
   cross-checking the three models.  Exit code 0 only when both are
   clean, so CI can gate on it directly. *)

module C = Retrofit_conformance

let () =
  let seed = ref 1 in
  let count = ref 1000 in
  let max_steps = ref 20_000_000 in
  let no_dwarf = ref false in
  let no_audit = ref false in
  let no_shrink = ref false in
  let analyze = ref false in
  let multishot = ref false in
  let sem_multishot = ref false in
  let skip_corpus = ref false in
  let speclist =
    [
      ("--seed", Arg.Set_int seed, "INT campaign seed (default 1)");
      ("--count", Arg.Set_int count, "INT number of generated programs (default 1000)");
      ( "--max-steps",
        Arg.Set_int max_steps,
        "INT fiber-machine fuel per program (default 20M)" );
      ("--no-dwarf", Arg.Set no_dwarf, " disable DWARF unwind sampling");
      ("--no-audit", Arg.Set no_audit, " disable the fiber-machine auditor");
      ("--no-shrink", Arg.Set no_shrink, " report failures unshrunk");
      ( "--analyze",
        Arg.Set analyze,
        " run the static effect-safety analyzer on every program and fail on \
         any Safe/Must claim a backend contradicts" );
      ( "--multishot",
        Arg.Set multishot,
        " mutation mode: disable the fiber machine's one-shot check (expected to fail)"
      );
      ( "--sem-multishot",
        Arg.Set sem_multishot,
        " mutation mode: disable the semantics machine's one-shot discipline (expected \
         to fail)" );
      ("--skip-corpus", Arg.Set skip_corpus, " skip the corpus replay");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [options]";
  let failed = ref false in
  if not !skip_corpus then begin
    match C.Fuzz.replay_corpus () with
    | [] -> Printf.printf "corpus: %d entries ok\n%!" (List.length C.Corpus.entries)
    | problems ->
        failed := true;
        List.iter
          (fun (name, problem) -> Printf.printf "corpus %s FAILED: %s\n" name problem)
          problems
  end;
  let fiber_config =
    if !multishot then
      Retrofit_fiber.Config.with_multishot true Retrofit_fiber.Config.mc
    else Retrofit_fiber.Config.mc
  in
  let stats =
    C.Fuzz.campaign ~fiber_config ~fib_fuel:!max_steps
      ~sem_one_shot:(not !sem_multishot) ~audit:(not !no_audit)
      ~dwarf:(not !no_dwarf) ~analyze:!analyze ~shrink:(not !no_shrink)
      ~seed:!seed ~count:!count ()
  in
  print_string (C.Fuzz.stats_to_string stats);
  if stats.C.Fuzz.failures <> [] then failed := true;
  exit (if !failed then 1 else 0)
