(* Differential conformance fuzzer CLI.

   Replays the committed corpus first, then runs a seeded campaign
   cross-checking the three models.  Exit code 0 only when both are
   clean, so CI can gate on it directly. *)

module C = Retrofit_conformance

let () =
  let seed = ref 1 in
  let count = ref 1000 in
  let max_steps = ref 20_000_000 in
  let no_dwarf = ref false in
  let no_audit = ref false in
  let no_shrink = ref false in
  let analyze = ref false in
  let multishot = ref false in
  let fib_multishot = ref false in
  let sem_multishot = ref false in
  let skip_corpus = ref false in
  let stack_policy = ref "" in
  let policy_diff = ref false in
  let speclist =
    [
      ("--seed", Arg.Set_int seed, "INT campaign seed (default 1)");
      ("--count", Arg.Set_int count, "INT number of generated programs (default 1000)");
      ( "--max-steps",
        Arg.Set_int max_steps,
        "INT fiber-machine fuel per program (default 20M)" );
      ("--no-dwarf", Arg.Set no_dwarf, " disable DWARF unwind sampling");
      ("--no-audit", Arg.Set no_audit, " disable the fiber-machine auditor");
      ("--no-shrink", Arg.Set no_shrink, " report failures unshrunk");
      ( "--analyze",
        Arg.Set analyze,
        " run the static effect-safety analyzer on every program and fail on \
         any Safe/Must claim a backend contradicts" );
      ( "--multishot",
        Arg.Set multishot,
        " multishot campaign: clone continuations on resume in both the \
         semantics machine and the fiber backend and skip the (one-shot) \
         native leg; requires a multishot-capable fiber configuration" );
      ( "--fib-multishot",
        Arg.Set fib_multishot,
        " mutation mode: enable fiber-side cloning alone, against the \
         one-shot semantics machine (expected to fail)" );
      ( "--sem-multishot",
        Arg.Set sem_multishot,
        " mutation mode: disable the semantics machine's one-shot discipline (expected \
         to fail)" );
      ("--skip-corpus", Arg.Set skip_corpus, " skip the corpus replay");
      ( "--stack-policy",
        Arg.Set_string stack_policy,
        "NAME run the fiber backend under this stack policy (copy | segmented \
         | segmented-cow | reserve; default copy)" );
      ( "--policy-diff",
        Arg.Set policy_diff,
        " additionally run every program under each alternative stack policy \
         and diff against the default policy" );
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [options]";
  let failed = ref false in
  if not !skip_corpus then begin
    match C.Fuzz.replay_corpus () with
    | [] -> Printf.printf "corpus: %d entries ok\n%!" (List.length C.Corpus.entries)
    | problems ->
        failed := true;
        List.iter
          (fun (name, problem) -> Printf.printf "corpus %s FAILED: %s\n" name problem)
          problems
  end;
  let module F = Retrofit_fiber in
  let policy =
    match !stack_policy with
    | "" -> F.Stack_policy.copy_double
    | name -> (
        match F.Stack_policy.of_string name with
        | Some p -> p
        | None ->
            Printf.eprintf "unknown stack policy %S (try: %s)\n" name
              (String.concat ", " (List.map fst F.Stack_policy.all));
            exit 2)
  in
  let fiber_config =
    F.Config.mc
    |> F.Config.with_policy policy
    |> F.Config.with_multishot (!multishot || !fib_multishot)
  in
  let policies = if !policy_diff then C.Fuzz.default_policies else [] in
  let stats =
    C.Fuzz.campaign ~fiber_config ~fib_fuel:!max_steps
      ~sem_one_shot:(not !sem_multishot) ~audit:(not !no_audit)
      ~dwarf:(not !no_dwarf) ~analyze:!analyze ~shrink:(not !no_shrink)
      ~policies ~multishot:!multishot ~seed:!seed ~count:!count ()
  in
  print_string (C.Fuzz.stats_to_string stats);
  if stats.C.Fuzz.failures <> [] then failed := true;
  exit (if !failed then 1 else 0)
